//! End-to-end exercises of the Table 1 hardware/software protocol, played
//! exactly as §3.6 describes: fill → trigger → poll → refill → read key.

use pageforge::core::fabric::FlatFabric;
use pageforge::core::{EngineConfig, PageForgeEngine, INVALID_INDEX};
use pageforge::ecc::EccKeyConfig;
use pageforge::types::{Gfn, PageData, Ppn, VmId};
use pageforge::vm::HostMemory;

fn pages(contents: &[u8]) -> (HostMemory, Vec<Ppn>) {
    let mut mem = HostMemory::new();
    let ppns = contents
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            mem.map_new_page(
                VmId(0),
                Gfn(i as u64),
                PageData::from_fn(move |j| c.wrapping_mul(29).wrapping_add((j % 17) as u8)),
            )
        })
        .collect();
    (mem, ppns)
}

/// The §3.6 protocol across multiple refills: "the OS periodically calls
/// get_PFE_info... If S is set and D reset, it refills the Scan table with
/// another batch of insert_PPN calls, and then calls update_PFE."
#[test]
fn multi_batch_protocol_finds_late_duplicate() {
    // Candidate equals content 9; batches hold 2 pages each, the match is
    // in the third batch.
    let (mem, p) = pages(&[1, 2, 3, 4, 5, 9, 9]);
    let mut engine = PageForgeEngine::new(EngineConfig {
        table_entries: 2,
        ..EngineConfig::default()
    });
    let mut fabric = FlatFabric::all_dram(80);

    let candidate = p[6];
    engine.insert_pfe(candidate, false, 0);
    let mut found = None;
    for (batch, chunk) in p[..6].chunks(2).enumerate() {
        engine.clear_others();
        for (i, &ppn) in chunk.iter().enumerate() {
            let next = if i + 1 < chunk.len() {
                (i + 1) as u8
            } else {
                INVALID_INDEX
            };
            engine.insert_ppn(i as u8, ppn, next, next);
        }
        let last = batch == 2;
        engine.update_pfe(last, 0);
        engine.run_batch(&mem, &mut fabric, batch as u64 * 50_000);
        let info = engine.pfe_info();
        assert!(info.scanned, "S must be set after every batch");
        if info.duplicate {
            found = Some(chunk[info.ptr as usize]);
            break;
        }
    }
    assert_eq!(found, Some(p[5]), "duplicate is the first '9' page");
    // "If D is set... the hardware completes the generation of the hash
    // key" — H must be readable now.
    let info = engine.pfe_info();
    assert!(info.hash_ready);
    assert_eq!(
        info.hash,
        Some(EccKeyConfig::default().page_key(mem.frame_data(candidate).unwrap()))
    );
}

/// `update_ECC_offset` changes the key for subsequent candidates.
#[test]
fn update_ecc_offset_affects_next_candidate() {
    let (mem, p) = pages(&[7, 8]);
    let mut fabric = FlatFabric::all_dram(80);
    let mut key_with = |offsets: Vec<usize>| {
        let mut engine = PageForgeEngine::new(EngineConfig::default());
        engine.update_ecc_offset(offsets).unwrap();
        engine.insert_pfe(p[0], true, 0);
        engine.insert_ppn(0, p[1], INVALID_INDEX, INVALID_INDEX);
        engine.run_batch(&mem, &mut fabric, 0);
        engine.pfe_info().hash.expect("key ready after L-batch")
    };
    let a = key_with(vec![3, 19, 35, 51]);
    let b = key_with(vec![0, 16, 32, 48]);
    assert_ne!(a, b, "different sampled lines give different keys");
    // And each matches the software-computed key for those offsets.
    let cfg = EccKeyConfig::with_offsets(vec![0, 16, 32, 48]).unwrap();
    assert_eq!(b, cfg.page_key(mem.frame_data(p[0]).unwrap()));
}

/// The S bit without D after a full scan of distinct pages; Ptr tells the
/// OS which way the last comparison went.
#[test]
fn scanned_without_duplicate_reports_direction() {
    let (mem, p) = pages(&[50, 10]);
    let mut engine = PageForgeEngine::new(EngineConfig::default());
    let mut fabric = FlatFabric::all_dram(80);
    // Candidate (content 10*29...) is smaller than the node (50...):
    // encode distinct invalid continuations on each side.
    engine.insert_pfe(p[1], true, 0);
    engine.insert_ppn(0, p[0], 100, 101);
    engine.run_batch(&mem, &mut fabric, 0);
    let info = engine.pfe_info();
    assert!(info.scanned && !info.duplicate);
    assert!(
        info.ptr == 100 || info.ptr == 101,
        "Ptr must carry the walk-off code, got {}",
        info.ptr
    );
}

/// Hardware statistics reflect the §3.5 no-cache design: candidate lines
/// are re-fetched for every comparison.
#[test]
fn candidate_is_refetched_per_comparison() {
    let (mem, p) = pages(&[5, 6, 7]);
    // Make two nodes identical-prefix so comparisons run deep... simpler:
    // compare candidate against two distinct pages; candidate lines are
    // fetched once per comparison.
    let mut engine = PageForgeEngine::new(EngineConfig::default());
    let mut fabric = FlatFabric::all_dram(80);
    engine.insert_pfe(p[0], true, 0);
    engine.insert_ppn(0, p[1], 1, 1);
    engine.insert_ppn(1, p[2], INVALID_INDEX, INVALID_INDEX);
    engine.run_batch(&mem, &mut fabric, 0);
    let stats = engine.stats();
    assert_eq!(stats.comparisons, 2);
    // Each comparison fetched pairs of lines; totals must be even and > 2
    // (candidate re-read for the second comparison).
    assert!(stats.lines_fetched >= 4);
}

/// A full driver pass equals software KSM's merge decisions even when the
/// Scan Table is tiny (max refill pressure).
#[test]
fn tiny_scan_table_still_correct() {
    use pageforge::core::{PageForge, PageForgeConfig};
    let contents: Vec<u8> = (0..40).map(|i| (i % 7) as u8).collect();
    let (mem, _) = pages(&contents);
    let mut m = mem.clone();
    let hints: Vec<_> = (0..40).map(|i| (VmId(0), Gfn(i as u64))).collect();
    let cfg = PageForgeConfig {
        engine: EngineConfig {
            table_entries: 3,
            ..EngineConfig::default()
        },
        ..PageForgeConfig::default()
    };
    let mut pf = PageForge::new(cfg, hints.clone());
    let mut fabric = FlatFabric::all_dram(80);
    pf.run_to_steady_state(&mut m, &mut fabric, 16);
    assert_eq!(m.allocated_frames(), 7, "7 distinct contents remain");
    m.check_invariants().unwrap();

    // And a tiny table needs strictly more refills than the paper's 31-entry
    // table to do the same job.
    let mut m31 = mem.clone();
    let mut pf31 = PageForge::new(PageForgeConfig::default(), hints);
    pf31.run_to_steady_state(&mut m31, &mut fabric, 16);
    assert_eq!(m31.allocated_frames(), 7);
    assert!(
        pf.stats().refills > pf31.stats().refills,
        "3-entry table: {} refills vs 31-entry: {}",
        pf.stats().refills,
        pf31.stats().refills
    );
}
