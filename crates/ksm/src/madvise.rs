//! The `madvise` registration interface.
//!
//! KSM only scans pages that a guest (or its VMM) registered with
//! `madvise(MADV_MERGEABLE)` (§2.1: "when a VM is deployed, it provides a
//! hint to KSM with the range of pages that should be considered for
//! merging"). The paper contrasts this with UKSM's whole-system scanning:
//! the madvise interface is what lets "a cloud provider choose which VMs
//! should be prevented from performing same-page merging" (§7.2).
//!
//! [`MergeRegistry`] tracks per-VM mergeable ranges, supports
//! `MADV_UNMERGEABLE` withdrawal, and produces the scan list the daemon
//! iterates.

use std::collections::BTreeMap;
use std::ops::Range;

use pageforge_types::{Gfn, VmId};

/// Per-VM registry of `MADV_MERGEABLE` guest-frame ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeRegistry {
    /// Sorted, disjoint ranges per VM.
    regions: BTreeMap<VmId, Vec<(u64, u64)>>,
}

impl MergeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `madvise(range, MADV_MERGEABLE)`: marks the range scannable.
    /// Overlapping/adjacent ranges coalesce.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or reversed.
    pub fn advise_mergeable(&mut self, vm: VmId, range: Range<u64>) {
        assert!(range.start < range.end, "empty or reversed range");
        let ranges = self.regions.entry(vm).or_default();
        ranges.push((range.start, range.end));
        Self::normalize(ranges);
    }

    /// `madvise(range, MADV_UNMERGEABLE)`: withdraws the range. Pages
    /// already merged stay merged (the kernel breaks CoW lazily on write);
    /// they simply stop being *scanned*.
    pub fn advise_unmergeable(&mut self, vm: VmId, range: Range<u64>) {
        let Some(ranges) = self.regions.get_mut(&vm) else {
            return;
        };
        let mut out = Vec::with_capacity(ranges.len() + 1);
        for &(s, e) in ranges.iter() {
            if e <= range.start || s >= range.end {
                out.push((s, e)); // untouched
            } else {
                if s < range.start {
                    out.push((s, range.start));
                }
                if e > range.end {
                    out.push((range.end, e));
                }
            }
        }
        *ranges = out;
        if ranges.is_empty() {
            self.regions.remove(&vm);
        }
    }

    /// Removes everything a VM registered (VM teardown).
    pub fn remove_vm(&mut self, vm: VmId) {
        self.regions.remove(&vm);
    }

    /// Whether a specific guest page is currently mergeable.
    pub fn is_mergeable(&self, vm: VmId, gfn: Gfn) -> bool {
        self.regions
            .get(&vm)
            .is_some_and(|rs| rs.iter().any(|&(s, e)| gfn.0 >= s && gfn.0 < e))
    }

    /// Total registered pages across all VMs.
    pub fn registered_pages(&self) -> u64 {
        self.regions
            .values()
            .flat_map(|rs| rs.iter().map(|&(s, e)| e - s))
            .sum()
    }

    /// The scan list the daemon iterates: every registered page in
    /// (VM, GFN) order.
    pub fn scan_list(&self) -> Vec<(VmId, Gfn)> {
        let mut out = Vec::new();
        for (&vm, ranges) in &self.regions {
            for &(s, e) in ranges {
                out.extend((s..e).map(|g| (vm, Gfn(g))));
            }
        }
        out
    }

    fn normalize(ranges: &mut Vec<(u64, u64)>) {
        ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for &(s, e) in ranges.iter() {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        *ranges = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advise_and_scan() {
        let mut r = MergeRegistry::new();
        r.advise_mergeable(VmId(0), 0..4);
        r.advise_mergeable(VmId(1), 2..5);
        assert_eq!(r.registered_pages(), 7);
        let list = r.scan_list();
        assert_eq!(list.len(), 7);
        assert!(list.contains(&(VmId(0), Gfn(3))));
        assert!(list.contains(&(VmId(1), Gfn(4))));
        assert!(!list.contains(&(VmId(1), Gfn(0))));
    }

    #[test]
    fn overlapping_ranges_coalesce() {
        let mut r = MergeRegistry::new();
        r.advise_mergeable(VmId(0), 0..10);
        r.advise_mergeable(VmId(0), 5..15);
        r.advise_mergeable(VmId(0), 15..20); // adjacent
        assert_eq!(r.registered_pages(), 20);
        assert!(r.is_mergeable(VmId(0), Gfn(19)));
        assert!(!r.is_mergeable(VmId(0), Gfn(20)));
    }

    #[test]
    fn unmergeable_punches_holes() {
        let mut r = MergeRegistry::new();
        r.advise_mergeable(VmId(0), 0..10);
        r.advise_unmergeable(VmId(0), 3..6);
        assert_eq!(r.registered_pages(), 7);
        assert!(r.is_mergeable(VmId(0), Gfn(2)));
        assert!(!r.is_mergeable(VmId(0), Gfn(3)));
        assert!(!r.is_mergeable(VmId(0), Gfn(5)));
        assert!(r.is_mergeable(VmId(0), Gfn(6)));
    }

    #[test]
    fn unmergeable_whole_region_removes_vm() {
        let mut r = MergeRegistry::new();
        r.advise_mergeable(VmId(0), 0..5);
        r.advise_unmergeable(VmId(0), 0..5);
        assert_eq!(r.registered_pages(), 0);
        assert!(r.scan_list().is_empty());
    }

    #[test]
    fn unmergeable_of_unknown_vm_is_noop() {
        let mut r = MergeRegistry::new();
        r.advise_unmergeable(VmId(9), 0..5);
        assert_eq!(r.registered_pages(), 0);
    }

    #[test]
    fn remove_vm_clears_only_that_vm() {
        let mut r = MergeRegistry::new();
        r.advise_mergeable(VmId(0), 0..3);
        r.advise_mergeable(VmId(1), 0..3);
        r.remove_vm(VmId(0));
        assert_eq!(r.registered_pages(), 3);
        assert!(!r.is_mergeable(VmId(0), Gfn(0)));
        assert!(r.is_mergeable(VmId(1), Gfn(0)));
    }

    #[test]
    #[should_panic(expected = "empty or reversed")]
    fn empty_range_panics() {
        let mut r = MergeRegistry::new();
        r.advise_mergeable(VmId(0), 5..5);
    }

    #[test]
    fn provider_can_exempt_a_vm() {
        // The §7.2 scenario: the provider opts VM 1 out entirely.
        let mut r = MergeRegistry::new();
        for vm in 0..3u32 {
            r.advise_mergeable(VmId(vm), 0..100);
        }
        r.advise_unmergeable(VmId(1), 0..100);
        let list = r.scan_list();
        assert!(list.iter().all(|&(vm, _)| vm != VmId(1)));
        assert_eq!(list.len(), 200);
    }
}
