//! Fixture: a fully clean result-affecting crate root.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;

/// Registers the one documented metric and emits the one documented
/// trace pair; uses only deterministic collections and fallible access.
pub fn register(m: &mut BTreeMap<String, u64>) -> Option<u64> {
    m.insert("engine.runs".to_owned(), 1);
    trace_event!(0, "engine", "batch", {});
    m.get("engine.runs").copied()
}
