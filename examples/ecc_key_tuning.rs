//! Tuning the ECC hash-key offsets with `update_ECC_offset`.
//!
//! The paper's Table 1 interface includes `update_ECC_offset`: "the offsets
//! are set after profiling the workloads that typically run on the hardware
//! platform. The goal is to attain a good hash key" (§3.6). This example
//! does exactly that profiling: it measures, for a workload whose writes
//! are biased toward page headers, how well different offset placements
//! detect page changes — and then installs the best one on the engine.
//!
//! Run with: `cargo run --release --example ecc_key_tuning`

use pageforge::ecc::EccKeyConfig;
use pageforge::types::PageData;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Mutates `page` the way this workload writes: 70% of writes land in the
/// first 1 KB (headers), the rest anywhere.
fn workload_write(page: &mut PageData, rng: &mut SmallRng) {
    let len = 64usize;
    let offset = if rng.gen::<f64>() < 0.7 {
        rng.gen_range(0..1024 - len)
    } else {
        rng.gen_range(1024..4096 - len)
    };
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    page.as_bytes_mut()[offset..offset + len].copy_from_slice(&bytes);
}

/// Fraction of single-write changes a key configuration detects.
fn detection_rate(cfg: &EccKeyConfig, trials: u32, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut detected = 0;
    for t in 0..trials {
        let before = PageData::from_fn(|i| ((i as u32 * 7 + t) % 251) as u8);
        let mut after = before.clone();
        workload_write(&mut after, &mut rng);
        if cfg.page_key(&before) != cfg.page_key(&after) {
            detected += 1;
        }
    }
    f64::from(detected) / f64::from(trials)
}

fn main() {
    let candidates: Vec<(&str, Vec<usize>)> = vec![
        ("paper default (one per 1KB section)", vec![3, 19, 35, 51]),
        ("all in first 1KB (header-focused)", vec![1, 5, 9, 13]),
        ("spread, header-weighted", vec![1, 7, 19, 40]),
        ("tail-focused", vec![50, 54, 58, 62]),
        (
            "eight offsets (64-bit key)",
            vec![1, 9, 17, 25, 33, 41, 49, 57],
        ),
    ];

    println!("profiling change-detection rate of offset placements");
    println!("(workload: 70% of writes land in the first 1KB)\n");
    let mut best: Option<(f64, &str, Vec<usize>)> = None;
    for (name, offsets) in &candidates {
        let cfg = EccKeyConfig::with_offsets(offsets.clone()).expect("valid offsets");
        let rate = detection_rate(&cfg, 4000, 42);
        println!(
            "{:>40}  detect {:>5.1}%  ({} B fetched/key)",
            name,
            rate * 100.0,
            cfg.bytes_fetched()
        );
        if best.as_ref().is_none_or(|(r, _, _)| rate > *r) {
            best = Some((rate, name, offsets.clone()));
        }
    }
    let (rate, name, offsets) = best.expect("non-empty candidates");
    println!("\nbest placement: {name} ({:.1}%)", rate * 100.0);

    // Install it on the hardware, exactly as the OS would.
    use pageforge::core::{EngineConfig, PageForgeEngine};
    let mut engine = PageForgeEngine::new(EngineConfig::default());
    engine
        .update_ecc_offset(offsets)
        .expect("profiled offsets are valid");
    println!(
        "update_ECC_offset installed; engine now samples lines {:?}",
        engine.config().ecc.offsets()
    );
}
