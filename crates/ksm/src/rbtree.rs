//! An arena-based red-black tree with caller-driven walks.
//!
//! KSM keeps its stable and unstable trees as Linux `rbtree`s, which expose
//! an *intrusive* API: the caller walks from the root comparing as it goes,
//! then links the new node and asks the tree to rebalance
//! (`rb_link_node` + `rb_insert_color`). That caller-driven style is exactly
//! what this reproduction needs, because every comparison during the walk is
//! a *page-content* comparison whose cost must be accounted, and because
//! PageForge's Scan Table is loaded with breadth-first slices of this very
//! tree (§3.4).
//!
//! This implementation stores nodes in a `Vec` arena with index links and a
//! sentinel NIL node (index 0), and provides full CLRS insert/delete
//! rebalancing. [`RbTree::check_invariants`] verifies the red-black
//! properties and is exercised by property tests.

use std::fmt;

/// The sentinel index: black, self-linked, never exposed.
const NIL: u32 = 0;

/// Handle to a live tree node. Never equal to the sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

/// Which child slot of a parent a new node should be linked into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Link as the left (smaller) child.
    Left,
    /// Link as the right (greater) child.
    Right,
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    parent: u32,
    left: u32,
    right: u32,
    red: bool,
}

impl<T> Node<T> {
    fn vacant() -> Self {
        Node {
            value: None,
            parent: NIL,
            left: NIL,
            right: NIL,
            red: false,
        }
    }
}

/// A red-black tree over values of type `T`, ordered externally by the
/// caller's walks.
///
/// The tree never compares values itself: the caller walks with
/// [`root`](RbTree::root) / [`left`](RbTree::left) / [`right`](RbTree::right)
/// and links with [`insert_at`](RbTree::insert_at). This mirrors the Linux
/// rbtree API that KSM is written against.
///
/// # Examples
///
/// ```
/// use pageforge_ksm::rbtree::{RbTree, Side};
///
/// let mut t: RbTree<u32> = RbTree::new();
/// let root = t.insert_at(None, Side::Left, 50);
/// // Walk: 30 < 50, so it goes to the left of the root.
/// t.insert_at(Some(root), Side::Left, 30);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![30, 50]);
/// ```
#[derive(Clone)]
pub struct RbTree<T> {
    nodes: Vec<Node<T>>,
    root: u32,
    free: Vec<u32>,
    len: usize,
    /// Cumulative rotations performed by rebalancing (survives `clear`,
    /// like KSM's own work counters — it meters *work done*, not state).
    rotations: u64,
}

impl<T> Default for RbTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for RbTree<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RbTree")
            .field("len", &self.len)
            .field("inorder", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

impl<T> RbTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RbTree {
            nodes: vec![Node::vacant()], // sentinel at index 0
            root: NIL,
            free: Vec::new(),
            len: 0,
            rotations: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Cumulative rotations performed by rebalancing since construction
    /// (not reset by [`clear`](Self::clear)). A proxy for how much
    /// restructuring work the tree has cost — the paper's KSM analysis
    /// charges tree maintenance under "other" cycles.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Height of the tree: nodes on the longest root-to-leaf path
    /// (0 for an empty tree). O(n); intended for reporting, not hot paths.
    pub fn depth(&self) -> usize {
        let Some(root) = self.root() else {
            return 0;
        };
        let mut max = 0usize;
        let mut stack = vec![(root, 1usize)];
        while let Some((id, d)) = stack.pop() {
            max = max.max(d);
            if let Some(l) = self.left(id) {
                stack.push((l, d + 1));
            }
            if let Some(r) = self.right(id) {
                stack.push((r, d + 1));
            }
        }
        max
    }

    /// `true` when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all nodes. (KSM does this to the unstable tree at the end of
    /// every pass: "throw away and regenerate", Algorithm 1 line 27.)
    pub fn clear(&mut self) {
        self.nodes.truncate(1);
        self.nodes[0] = Node::vacant();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    /// The root node, if any.
    pub fn root(&self) -> Option<NodeId> {
        self.wrap(self.root)
    }

    /// Left child of `id`.
    pub fn left(&self, id: NodeId) -> Option<NodeId> {
        self.wrap(self.nodes[id.0 as usize].left)
    }

    /// Right child of `id`.
    pub fn right(&self, id: NodeId) -> Option<NodeId> {
        self.wrap(self.nodes[id.0 as usize].right)
    }

    /// Parent of `id`.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.wrap(self.nodes[id.0 as usize].parent)
    }

    /// The value stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (already removed).
    pub fn value(&self, id: NodeId) -> &T {
        self.nodes[id.0 as usize]
            .value
            .as_ref()
            .expect("stale NodeId")
    }

    /// Mutable access to the value stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (already removed).
    pub fn value_mut(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0 as usize]
            .value
            .as_mut()
            .expect("stale NodeId")
    }

    /// Whether `id` refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len() && self.nodes[id.0 as usize].value.is_some()
    }

    fn wrap(&self, idx: u32) -> Option<NodeId> {
        if idx == NIL {
            None
        } else {
            Some(NodeId(idx))
        }
    }

    fn alloc(&mut self, value: T) -> u32 {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.nodes.push(Node::vacant());
                (self.nodes.len() - 1) as u32
            }
        };
        let node = &mut self.nodes[idx as usize];
        node.value = Some(value);
        node.parent = NIL;
        node.left = NIL;
        node.right = NIL;
        node.red = true;
        idx
    }

    /// Links `value` as the `side` child of `parent` and rebalances.
    /// With `parent == None` the value becomes the root of an empty tree.
    ///
    /// The caller must have walked to a genuine insertion point: the
    /// designated child slot must be empty.
    ///
    /// # Panics
    ///
    /// Panics if the child slot is occupied, or if `parent` is `None` on a
    /// non-empty tree.
    pub fn insert_at(&mut self, parent: Option<NodeId>, side: Side, value: T) -> NodeId {
        let z = self.alloc(value);
        match parent {
            None => {
                assert_eq!(self.root, NIL, "insert_at(None) on a non-empty tree");
                self.root = z;
            }
            Some(p) => {
                let p = p.0;
                let slot = match side {
                    Side::Left => &mut self.nodes[p as usize].left,
                    Side::Right => &mut self.nodes[p as usize].right,
                };
                assert_eq!(*slot, NIL, "insert_at: child slot is occupied");
                *slot = z;
                self.nodes[z as usize].parent = p;
            }
        }
        self.len += 1;
        self.insert_fixup(z);
        NodeId(z)
    }

    fn rotate_left(&mut self, x: u32) {
        self.rotations += 1;
        let y = self.nodes[x as usize].right;
        debug_assert_ne!(y, NIL);
        let y_left = self.nodes[y as usize].left;
        self.nodes[x as usize].right = y_left;
        if y_left != NIL {
            self.nodes[y_left as usize].parent = x;
        }
        let x_parent = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = x_parent;
        if x_parent == NIL {
            self.root = y;
        } else if self.nodes[x_parent as usize].left == x {
            self.nodes[x_parent as usize].left = y;
        } else {
            self.nodes[x_parent as usize].right = y;
        }
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].parent = y;
    }

    fn rotate_right(&mut self, x: u32) {
        self.rotations += 1;
        let y = self.nodes[x as usize].left;
        debug_assert_ne!(y, NIL);
        let y_right = self.nodes[y as usize].right;
        self.nodes[x as usize].left = y_right;
        if y_right != NIL {
            self.nodes[y_right as usize].parent = x;
        }
        let x_parent = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = x_parent;
        if x_parent == NIL {
            self.root = y;
        } else if self.nodes[x_parent as usize].right == x {
            self.nodes[x_parent as usize].right = y;
        } else {
            self.nodes[x_parent as usize].left = y;
        }
        self.nodes[y as usize].right = x;
        self.nodes[x as usize].parent = y;
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.nodes[self.nodes[z as usize].parent as usize].red {
            let p = self.nodes[z as usize].parent;
            let g = self.nodes[p as usize].parent;
            if p == self.nodes[g as usize].left {
                let u = self.nodes[g as usize].right;
                if self.nodes[u as usize].red {
                    self.nodes[p as usize].red = false;
                    self.nodes[u as usize].red = false;
                    self.nodes[g as usize].red = true;
                    z = g;
                } else {
                    if z == self.nodes[p as usize].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z as usize].parent;
                    let g = self.nodes[p as usize].parent;
                    self.nodes[p as usize].red = false;
                    self.nodes[g as usize].red = true;
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g as usize].left;
                if self.nodes[u as usize].red {
                    self.nodes[p as usize].red = false;
                    self.nodes[u as usize].red = false;
                    self.nodes[g as usize].red = true;
                    z = g;
                } else {
                    if z == self.nodes[p as usize].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z as usize].parent;
                    let g = self.nodes[p as usize].parent;
                    self.nodes[p as usize].red = false;
                    self.nodes[g as usize].red = true;
                    self.rotate_left(g);
                }
            }
        }
        let root = self.root;
        self.nodes[root as usize].red = false;
        self.nodes[NIL as usize].red = false; // fixups may sniff the sentinel
    }

    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.nodes[u as usize].parent;
        if up == NIL {
            self.root = v;
        } else if self.nodes[up as usize].left == u {
            self.nodes[up as usize].left = v;
        } else {
            self.nodes[up as usize].right = v;
        }
        // Sentinel trick: v may be NIL; we still record its parent so
        // delete_fixup can navigate from it.
        self.nodes[v as usize].parent = up;
    }

    fn minimum(&self, mut x: u32) -> u32 {
        while self.nodes[x as usize].left != NIL {
            x = self.nodes[x as usize].left;
        }
        x
    }

    /// Removes node `id` and returns its value, rebalancing as needed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn remove(&mut self, id: NodeId) -> T {
        let z = id.0;
        assert!(
            self.nodes[z as usize].value.is_some(),
            "remove: stale NodeId"
        );
        let mut y = z;
        let mut y_was_red = self.nodes[y as usize].red;
        let x;
        if self.nodes[z as usize].left == NIL {
            x = self.nodes[z as usize].right;
            self.transplant(z, x);
        } else if self.nodes[z as usize].right == NIL {
            x = self.nodes[z as usize].left;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z as usize].right);
            y_was_red = self.nodes[y as usize].red;
            x = self.nodes[y as usize].right;
            if self.nodes[y as usize].parent == z {
                self.nodes[x as usize].parent = y;
            } else {
                self.transplant(y, x);
                let zr = self.nodes[z as usize].right;
                self.nodes[y as usize].right = zr;
                self.nodes[zr as usize].parent = y;
            }
            self.transplant(z, y);
            let zl = self.nodes[z as usize].left;
            self.nodes[y as usize].left = zl;
            self.nodes[zl as usize].parent = y;
            self.nodes[y as usize].red = self.nodes[z as usize].red;
        }
        if !y_was_red {
            self.delete_fixup(x);
        }
        // Reset the sentinel's links, which the fixup may have dirtied.
        self.nodes[NIL as usize].parent = NIL;
        self.nodes[NIL as usize].red = false;

        let value = self.nodes[z as usize].value.take().expect("checked above");
        self.nodes[z as usize] = Node::vacant();
        self.free.push(z);
        self.len -= 1;
        value
    }

    fn delete_fixup(&mut self, mut x: u32) {
        while x != self.root && !self.nodes[x as usize].red {
            let p = self.nodes[x as usize].parent;
            if x == self.nodes[p as usize].left {
                let mut w = self.nodes[p as usize].right;
                if self.nodes[w as usize].red {
                    self.nodes[w as usize].red = false;
                    self.nodes[p as usize].red = true;
                    self.rotate_left(p);
                    w = self.nodes[self.nodes[x as usize].parent as usize].right;
                }
                let wl = self.nodes[w as usize].left;
                let wr = self.nodes[w as usize].right;
                if !self.nodes[wl as usize].red && !self.nodes[wr as usize].red {
                    self.nodes[w as usize].red = true;
                    x = self.nodes[x as usize].parent;
                } else {
                    if !self.nodes[wr as usize].red {
                        self.nodes[wl as usize].red = false;
                        self.nodes[w as usize].red = true;
                        self.rotate_right(w);
                        w = self.nodes[self.nodes[x as usize].parent as usize].right;
                    }
                    let p = self.nodes[x as usize].parent;
                    self.nodes[w as usize].red = self.nodes[p as usize].red;
                    self.nodes[p as usize].red = false;
                    let wr = self.nodes[w as usize].right;
                    self.nodes[wr as usize].red = false;
                    self.rotate_left(p);
                    x = self.root;
                }
            } else {
                let mut w = self.nodes[p as usize].left;
                if self.nodes[w as usize].red {
                    self.nodes[w as usize].red = false;
                    self.nodes[p as usize].red = true;
                    self.rotate_right(p);
                    w = self.nodes[self.nodes[x as usize].parent as usize].left;
                }
                let wl = self.nodes[w as usize].left;
                let wr = self.nodes[w as usize].right;
                if !self.nodes[wl as usize].red && !self.nodes[wr as usize].red {
                    self.nodes[w as usize].red = true;
                    x = self.nodes[x as usize].parent;
                } else {
                    if !self.nodes[wl as usize].red {
                        self.nodes[wr as usize].red = false;
                        self.nodes[w as usize].red = true;
                        self.rotate_left(w);
                        w = self.nodes[self.nodes[x as usize].parent as usize].left;
                    }
                    let p = self.nodes[x as usize].parent;
                    self.nodes[w as usize].red = self.nodes[p as usize].red;
                    self.nodes[p as usize].red = false;
                    let wl = self.nodes[w as usize].left;
                    self.nodes[wl as usize].red = false;
                    self.rotate_right(p);
                    x = self.root;
                }
            }
        }
        self.nodes[x as usize].red = false;
    }

    /// In-order iterator over the values.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.nodes[cur as usize].left;
        }
        Iter { tree: self, stack }
    }

    /// In-order iterator over `(NodeId, &T)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (NodeId, &T)> {
        IterIds {
            inner: self.iter_ids_raw(),
        }
    }

    fn iter_ids_raw(&self) -> Iter<'_, T> {
        self.iter()
    }

    /// Breadth-first traversal of the first `max_nodes` nodes starting at
    /// `start` — the slice of the tree the OS loads into PageForge's Scan
    /// Table (§3.4: "the root of the red-black tree... and a few subsequent
    /// levels of the tree in breadth-first order").
    pub fn bfs_from(&self, start: NodeId, max_nodes: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(max_nodes);
        self.bfs_from_into(start, max_nodes, &mut out);
        out
    }

    /// [`bfs_from`](Self::bfs_from) into a caller-owned buffer, clearing
    /// it first. The Scan Table loader refills thousands of times per
    /// scan round; reusing one buffer keeps that loop allocation-free.
    /// The output doubles as the BFS work queue — visited nodes are never
    /// removed, so the prefix *is* the traversal.
    pub fn bfs_from_into(&self, start: NodeId, max_nodes: usize, out: &mut Vec<NodeId>) {
        out.clear();
        if self.contains(start) && max_nodes > 0 {
            out.push(start);
        }
        let mut i = 0;
        while let Some(&n) = out.get(i) {
            if out.len() < max_nodes {
                if let Some(l) = self.left(n) {
                    out.push(l);
                }
            }
            if out.len() < max_nodes {
                if let Some(r) = self.right(n) {
                    out.push(r);
                }
            }
            i += 1;
        }
    }

    /// Verifies the red-black invariants and link consistency.
    ///
    /// Checks: the root is black; no red node has a red child; every
    /// root-to-leaf path has the same black height; parent/child links are
    /// mutually consistent; `len` matches the reachable node count.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.root != NIL {
            if self.nodes[self.root as usize].red {
                return Err("root is red".into());
            }
            if self.nodes[self.root as usize].parent != NIL {
                return Err("root has a parent".into());
            }
        }
        let mut count = 0usize;
        self.check_subtree(self.root, &mut count)?;
        if count != self.len {
            return Err(format!("len {} but {} reachable nodes", self.len, count));
        }
        Ok(())
    }

    /// Returns the black height of the subtree, checking invariants.
    fn check_subtree(&self, x: u32, count: &mut usize) -> Result<u32, String> {
        if x == NIL {
            return Ok(1);
        }
        *count += 1;
        let node = &self.nodes[x as usize];
        if node.value.is_none() {
            return Err(format!("reachable node {x} is vacant"));
        }
        for child in [node.left, node.right] {
            if child != NIL {
                if self.nodes[child as usize].parent != x {
                    return Err(format!("child {child} of {x} has wrong parent"));
                }
                if node.red && self.nodes[child as usize].red {
                    return Err(format!("red node {x} has red child {child}"));
                }
            }
        }
        let lh = self.check_subtree(node.left, count)?;
        let rh = self.check_subtree(node.right, count)?;
        if lh != rh {
            return Err(format!("black-height mismatch at {x}: {lh} vs {rh}"));
        }
        Ok(lh + u32::from(!node.red))
    }
}

/// In-order value iterator. Created by [`RbTree::iter`].
pub struct Iter<'a, T> {
    tree: &'a RbTree<T>,
    stack: Vec<u32>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let cur = self.stack.pop()?;
        let mut next = self.tree.nodes[cur as usize].right;
        while next != NIL {
            self.stack.push(next);
            next = self.tree.nodes[next as usize].left;
        }
        self.tree.nodes[cur as usize].value.as_ref()
    }
}

struct IterIds<'a, T> {
    inner: Iter<'a, T>,
}

impl<'a, T> Iterator for IterIds<'a, T> {
    type Item = (NodeId, &'a T);

    fn next(&mut self) -> Option<(NodeId, &'a T)> {
        let cur = self.inner.stack.pop()?;
        let mut next = self.inner.tree.nodes[cur as usize].right;
        while next != NIL {
            self.inner.stack.push(next);
            next = self.inner.tree.nodes[next as usize].left;
        }
        self.inner.tree.nodes[cur as usize]
            .value
            .as_ref()
            .map(|v| (NodeId(cur), v))
    }
}

/// Convenience: ordered insert/search for `T: Ord`, used by tests and by
/// callers that don't need cost accounting.
impl<T: Ord> RbTree<T> {
    /// Inserts `value` by its `Ord`, allowing duplicates (placed right).
    pub fn insert_ord(&mut self, value: T) -> NodeId {
        let mut parent = None;
        let mut cur = self.root();
        let mut side = Side::Left;
        while let Some(n) = cur {
            parent = Some(n);
            if value < *self.value(n) {
                side = Side::Left;
                cur = self.left(n);
            } else {
                side = Side::Right;
                cur = self.right(n);
            }
        }
        self.insert_at(parent, side, value)
    }

    /// Finds a node equal to `value`.
    pub fn find_ord(&self, value: &T) -> Option<NodeId> {
        let mut cur = self.root();
        while let Some(n) = cur {
            cur = match value.cmp(self.value(n)) {
                std::cmp::Ordering::Less => self.left(n),
                std::cmp::Ordering::Greater => self.right(n),
                std::cmp::Ordering::Equal => return Some(n),
            };
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: RbTree<i32> = RbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn single_insert() {
        let mut t = RbTree::new();
        let id = t.insert_at(None, Side::Left, 42);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), Some(id));
        assert_eq!(*t.value(id), 42);
        t.check_invariants().unwrap();
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let mut t = RbTree::new();
        for i in 0..1000 {
            t.insert_ord(i);
            if i % 97 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        let inorder: Vec<_> = t.iter().copied().collect();
        let expected: Vec<_> = (0..1000).collect();
        assert_eq!(inorder, expected);
        // Balanced: depth of a 1000-node RB tree is at most 2*log2(1001).
        let mut max_depth = 0;
        for (id, _) in t.iter_ids() {
            let mut d = 0;
            let mut cur = Some(id);
            while let Some(n) = cur {
                d += 1;
                cur = t.parent(n);
            }
            max_depth = max_depth.max(d);
        }
        assert!(max_depth <= 20, "depth {max_depth}");
    }

    #[test]
    fn find_ord_hits_and_misses() {
        let mut t = RbTree::new();
        for i in (0..100).step_by(2) {
            t.insert_ord(i);
        }
        assert!(t.find_ord(&42).is_some());
        assert!(t.find_ord(&43).is_none());
    }

    #[test]
    fn remove_leaf_and_internal() {
        let mut t = RbTree::new();
        let ids: Vec<_> = (0..7).map(|i| t.insert_ord(i)).collect();
        assert_eq!(t.remove(ids[0]), 0);
        t.check_invariants().unwrap();
        assert_eq!(t.remove(ids[3]), 3);
        t.check_invariants().unwrap();
        let inorder: Vec<_> = t.iter().copied().collect();
        assert_eq!(inorder, vec![1, 2, 4, 5, 6]);
    }

    #[test]
    fn remove_all_in_insertion_order() {
        let mut t = RbTree::new();
        let ids: Vec<_> = (0..200).map(|i| t.insert_ord((i * 37) % 200)).collect();
        for (k, id) in ids.into_iter().enumerate() {
            t.remove(id);
            if k % 13 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets() {
        let mut t = RbTree::new();
        for i in 0..50 {
            t.insert_ord(i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
        t.check_invariants().unwrap();
        // Usable after clear.
        t.insert_ord(1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = RbTree::new();
        let a = t.insert_ord(1);
        t.remove(a);
        let b = t.insert_ord(2);
        assert_eq!(a, b, "arena slot should be recycled");
    }

    #[test]
    #[should_panic(expected = "stale NodeId")]
    fn stale_handle_panics() {
        let mut t = RbTree::new();
        let a = t.insert_ord(1);
        t.remove(a);
        let _ = t.value(a);
    }

    #[test]
    #[should_panic(expected = "child slot is occupied")]
    fn double_link_panics() {
        let mut t = RbTree::new();
        let root = t.insert_at(None, Side::Left, 10);
        t.insert_at(Some(root), Side::Left, 5);
        t.insert_at(Some(root), Side::Left, 6);
    }

    #[test]
    fn bfs_returns_levels_in_order() {
        let mut t = RbTree::new();
        for i in 0..15 {
            t.insert_ord(i);
        }
        let root = t.root().unwrap();
        let bfs = t.bfs_from(root, 7);
        assert_eq!(bfs.len(), 7);
        assert_eq!(bfs[0], root);
        // Children of the root come next.
        let mut expected_next: Vec<_> = [t.left(root), t.right(root)]
            .into_iter()
            .flatten()
            .collect();
        expected_next.sort_by_key(|n| n.0);
        let mut got_next = vec![bfs[1], bfs[2]];
        got_next.sort_by_key(|n| n.0);
        assert_eq!(got_next, expected_next);
    }

    #[test]
    fn bfs_caps_at_tree_size() {
        let mut t = RbTree::new();
        for i in 0..3 {
            t.insert_ord(i);
        }
        let bfs = t.bfs_from(t.root().unwrap(), 31);
        assert_eq!(bfs.len(), 3);
    }

    #[test]
    fn iter_ids_matches_iter() {
        let mut t = RbTree::new();
        for i in [5, 3, 8, 1, 4, 7, 9] {
            t.insert_ord(i);
        }
        let by_val: Vec<_> = t.iter().copied().collect();
        let by_id: Vec<_> = t.iter_ids().map(|(_, v)| *v).collect();
        assert_eq!(by_val, by_id);
        assert_eq!(by_val, vec![1, 3, 4, 5, 7, 8, 9]);
    }
}
