//! DDR DRAM timing: channels, ranks, banks, and row buffers.
//!
//! Timing is expressed in *CPU* cycles (2 GHz core clock, Table 2; the
//! 1 GHz DDR device clock means one memory cycle is two CPU cycles). Each
//! bank tracks its open row, giving row-hit/row-miss access latencies; each
//! channel tracks recent *utilization* over a sliding window, from which a
//! queueing delay is derived (M/M/1-shaped: `u/(1-u) × service`).
//!
//! Contention is modeled by utilization rather than by absolute
//! `busy-until` timestamps because the simulator's requesters (cores, the
//! PageForge engine, the KSM task) advance on loosely-synchronized clocks:
//! timestamp comparisons across requesters would charge enormous spurious
//! waits whenever one requester runs ahead in time. The utilization window
//! is long (≫ the clock skew) so the estimate is skew-robust, while still
//! making a streaming dedup engine visibly delay demand reads — which is
//! exactly the contention channel the paper's Figure 11 discussion cares
//! about.

use pageforge_obs::trace_event;
use pageforge_obs::{CounterId, Registry};
use pageforge_types::{Cycle, LineAddr, LINE_SIZE};

/// DRAM geometry and timing, in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Lines per row buffer (a 2 KB row holds 32 64-byte lines).
    pub lines_per_row: u64,
    /// CAS latency (column access of an open row).
    pub t_cas: Cycle,
    /// RAS-to-CAS delay (activate a row).
    pub t_rcd: Cycle,
    /// Precharge time (close a row).
    pub t_rp: Cycle,
    /// Data-burst occupancy of the channel for one line.
    pub t_burst: Cycle,
    /// Utilization-window width for the contention estimate.
    pub util_window: Cycle,
    /// Upper bound on the queueing wait charged to one request.
    pub max_queue_wait: Cycle,
}

impl DramConfig {
    /// The paper's memory system: 2 channels, 8 ranks/channel, 8
    /// banks/rank, 1 GHz DDR (timings ×2 in CPU cycles).
    pub fn micro50() -> Self {
        DramConfig {
            channels: 2,
            ranks_per_channel: 8,
            banks_per_rank: 8,
            lines_per_row: 32,
            t_cas: 28,
            t_rcd: 28,
            t_rp: 28,
            t_burst: 8,
            util_window: 500_000,
            max_queue_wait: 2_000,
        }
    }

    /// Total banks across the device.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Peak data bandwidth of the device in GB/s at the given CPU clock:
    /// one line per `t_burst` per channel.
    pub fn peak_gbps(&self, cpu_hz: f64) -> f64 {
        self.channels as f64 * LINE_SIZE as f64 / (self.t_burst as f64 / cpu_hz) / 1e9
    }
}

/// Row-hit/miss and traffic counters.
///
/// A *view* assembled on demand from the device's metric registry
/// (names `mem.dram.*`, see OBSERVABILITY.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that had to close and open a row (or open a fresh one).
    pub row_misses: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total queueing-wait cycles charged.
    pub queue_wait_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
}

/// Ring size of utilization buckets: covers `RING × util_window` cycles of
/// requester clock skew.
const RING: usize = 16;

/// Busy-cycle accounting in absolute-indexed window buckets, so requesters
/// on skewed clocks each read the utilization of *their own* previous
/// window.
#[derive(Debug, Clone, Copy)]
struct Channel {
    /// `(window_index, busy_cycles)` per ring slot.
    slots: [(u64, Cycle); RING],
}

impl Default for Channel {
    fn default() -> Self {
        Channel {
            slots: [(u64::MAX, 0); RING],
        }
    }
}

impl Channel {
    fn note(&mut self, now: Cycle, busy: Cycle, window: Cycle) {
        let w = now / window;
        let slot = &mut self.slots[(w as usize) % RING];
        if slot.0 != w {
            *slot = (w, 0);
        }
        slot.1 += busy;
    }

    /// Utilization of the window preceding `now`'s, in [0, 0.98].
    fn utilization(&self, now: Cycle, window: Cycle) -> f64 {
        let w = (now / window).saturating_sub(1);
        let slot = self.slots[(w as usize) % RING];
        if slot.0 == w {
            (slot.1 as f64 / window as f64).min(0.98)
        } else {
            0.0
        }
    }

    fn queue_wait(&self, now: Cycle, window: Cycle, service: Cycle, cap: Cycle) -> Cycle {
        let util = self.utilization(now, window);
        let wait = util / (1.0 - util) * service as f64;
        (wait as Cycle).min(cap)
    }
}

/// Ids of the device counters in the metric registry (`mem.dram.*`).
#[derive(Debug, Clone, Copy)]
struct DramMetricIds {
    reads: CounterId,
    writes: CounterId,
    row_hits: CounterId,
    row_misses: CounterId,
    bytes: CounterId,
    queue_wait_cycles: CounterId,
}

impl DramMetricIds {
    fn register(reg: &mut Registry) -> Self {
        DramMetricIds {
            reads: reg.counter("mem.dram.reads"),
            writes: reg.counter("mem.dram.writes"),
            row_hits: reg.counter("mem.dram.row_hits"),
            row_misses: reg.counter("mem.dram.row_misses"),
            bytes: reg.counter("mem.dram.bytes"),
            queue_wait_cycles: reg.counter("mem.dram.queue_wait_cycles"),
        }
    }
}

/// The DRAM device array.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    channels: Vec<Channel>,
    metrics: Registry,
    ids: DramMetricIds,
}

impl Dram {
    /// Builds an idle DRAM with the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let mut metrics = Registry::new();
        let ids = DramMetricIds::register(&mut metrics);
        Dram {
            banks: vec![Bank::default(); cfg.total_banks()],
            channels: vec![Channel::default(); cfg.channels],
            cfg,
            metrics,
            ids,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Counter snapshot, assembled from the metric registry
    /// (`mem.dram.*`). Returned by value: the struct is a view.
    pub fn stats(&self) -> DramStats {
        DramStats {
            reads: self.metrics.counter_value(self.ids.reads),
            writes: self.metrics.counter_value(self.ids.writes),
            row_hits: self.metrics.counter_value(self.ids.row_hits),
            row_misses: self.metrics.counter_value(self.ids.row_misses),
            bytes: self.metrics.counter_value(self.ids.bytes),
            queue_wait_cycles: self.metrics.counter_value(self.ids.queue_wait_cycles),
        }
    }

    /// The underlying metric registry (`mem.dram.*` namespace).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Utilization estimate a request at `now` on `channel` would observe,
    /// for tests and reporting.
    pub fn channel_utilization_at(&self, channel: usize, now: Cycle) -> f64 {
        self.channels[channel].utilization(now, self.cfg.util_window)
    }

    /// Address mapping: line-interleaved across channels, then banks, so
    /// consecutive lines spread across channels (the paper interleaves
    /// pages across controllers/channels/ranks/banks for parallelism,
    /// §4.1).
    fn map(&self, addr: LineAddr) -> (usize, usize, u64) {
        let channel = (addr.0 % self.cfg.channels as u64) as usize;
        let within = addr.0 / self.cfg.channels as u64;
        let banks = (self.cfg.ranks_per_channel * self.cfg.banks_per_rank) as u64;
        let row_seq = within / self.cfg.lines_per_row;
        let bank = (row_seq % banks) as usize;
        let row = row_seq / banks;
        (channel, bank, row)
    }

    /// Services one line access issued at `now`; returns the completion
    /// cycle (`now` + queueing + access + burst).
    pub fn service(&mut self, addr: LineAddr, now: Cycle, write: bool) -> Cycle {
        let (channel_idx, bank_in_channel, row) = self.map(addr);
        let bank_idx =
            channel_idx * self.cfg.ranks_per_channel * self.cfg.banks_per_rank + bank_in_channel;

        let row_hit = matches!(self.banks[bank_idx].open_row, Some(open) if open == row);
        let access_latency = match self.banks[bank_idx].open_row {
            Some(open) if open == row => {
                self.metrics.inc(self.ids.row_hits);
                self.cfg.t_cas
            }
            Some(_) => {
                self.metrics.inc(self.ids.row_misses);
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.metrics.inc(self.ids.row_misses);
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        self.banks[bank_idx].open_row = Some(row);

        let channel = &mut self.channels[channel_idx];
        let wait = channel.queue_wait(
            now,
            self.cfg.util_window,
            access_latency + self.cfg.t_burst,
            self.cfg.max_queue_wait,
        );
        channel.note(now, self.cfg.t_burst, self.cfg.util_window);

        if write {
            self.metrics.inc(self.ids.writes);
        } else {
            self.metrics.inc(self.ids.reads);
        }
        self.metrics.add(self.ids.bytes, LINE_SIZE as u64);
        self.metrics.add(self.ids.queue_wait_cycles, wait);
        trace_event!(now, "dram", "command", {
            channel: channel_idx as f64,
            bank: bank_idx as f64,
            is_write: if write { 1.0 } else { 0.0 },
            row_hit: if row_hit { 1.0 } else { 0.0 },
            queue_wait: wait as f64,
            latency: (wait + access_latency + self.cfg.t_burst) as f64,
        });
        now + wait + access_latency + self.cfg.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_row_miss() {
        let mut d = Dram::new(DramConfig::micro50());
        let done = d.service(LineAddr(0), 0, false);
        assert_eq!(done, 28 + 28 + 8); // tRCD + tCAS + burst
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = Dram::new(DramConfig::micro50());
        let first = d.service(LineAddr(0), 0, false);
        // Line 2 maps to the same channel (even), same bank/row.
        let done = d.service(LineAddr(2), first, false);
        assert_eq!(done - first, 28 + 8); // tCAS + burst
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = DramConfig::micro50();
        let mut d = Dram::new(cfg);
        let banks = (cfg.ranks_per_channel * cfg.banks_per_rank) as u64;
        // Two rows on the same bank of channel 0.
        let same_bank_next_row = LineAddr(cfg.lines_per_row * banks * cfg.channels as u64);
        let first = d.service(LineAddr(0), 0, false);
        let done = d.service(same_bank_next_row, first, false);
        assert_eq!(done - first, 28 + 28 + 28 + 8); // tRP + tRCD + tCAS + burst
    }

    #[test]
    fn saturating_traffic_raises_queue_wait() {
        let cfg = DramConfig::micro50();
        let mut d = Dram::new(cfg);
        // Saturate channel 0 for two windows: one line per t_burst cycles.
        let mut t = 0;
        let mut addr = 0u64;
        while t < 2 * cfg.util_window {
            d.service(LineAddr(addr * 2), t, false); // even = channel 0
            addr = (addr + 7) % 100_000;
            t += cfg.t_burst;
        }
        assert!(
            d.channel_utilization_at(0, t) > 0.8,
            "utilization {}",
            d.channel_utilization_at(0, t)
        );
        // A new request now pays a substantial queueing wait.
        let start = t;
        let done = d.service(LineAddr(addr * 2), start, false);
        let base = 28 + 28 + 28 + 8; // worst-case access
        assert!(
            done - start > base,
            "expected queueing on a hot channel: {}",
            done - start
        );
        assert!(d.stats().queue_wait_cycles > 0);
    }

    #[test]
    fn idle_gap_decays_utilization() {
        let cfg = DramConfig::micro50();
        let mut d = Dram::new(cfg);
        let mut t = 0;
        for i in 0..2_000u64 {
            d.service(LineAddr(i * 2), t, false);
            t += cfg.t_burst;
        }
        // Long idle gap, then one access: utilization has decayed.
        let late = t + 10 * cfg.util_window;
        d.service(LineAddr(0), late, false);
        assert_eq!(d.channel_utilization_at(0, late), 0.0);
    }

    #[test]
    fn light_traffic_pays_no_wait() {
        let cfg = DramConfig::micro50();
        let mut d = Dram::new(cfg);
        // Sparse accesses: never builds utilization.
        for i in 0..100u64 {
            let start = i * 100_000;
            let done = d.service(LineAddr(0), start, false);
            assert!(done - start <= 28 + 28 + 28 + 8);
        }
    }

    #[test]
    fn queue_wait_is_capped() {
        let cfg = DramConfig::micro50();
        let mut ch = Channel::default();
        // Saturate window 0 completely.
        ch.note(0, cfg.util_window, cfg.util_window);
        let now = cfg.util_window; // window 1 reads window 0's utilization
        let wait = ch.queue_wait(now, cfg.util_window, 1000, cfg.max_queue_wait);
        assert_eq!(wait, cfg.max_queue_wait);
        // A request whose previous window is empty pays nothing.
        let far = 10 * cfg.util_window;
        assert_eq!(
            ch.queue_wait(far, cfg.util_window, 1000, cfg.max_queue_wait),
            0
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dram::new(DramConfig::micro50());
        d.service(LineAddr(0), 0, false);
        d.service(LineAddr(0), 100, true);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes, 128);
        assert!(d.stats().row_hit_rate() > 0.0);
    }

    #[test]
    fn peak_bandwidth_is_plausible() {
        // 2 channels × 64 B / 4 ns = 32 GB/s.
        let gbps = DramConfig::micro50().peak_gbps(2e9);
        assert!((gbps - 32.0).abs() < 0.1, "{gbps}");
    }

    #[test]
    fn mapping_is_total_and_stable() {
        let d = Dram::new(DramConfig::micro50());
        for raw in [0u64, 1, 63, 64, 12345, 1 << 30] {
            let (c1, b1, r1) = d.map(LineAddr(raw));
            let (c2, b2, r2) = d.map(LineAddr(raw));
            assert_eq!((c1, b1, r1), (c2, b2, r2));
            assert!(c1 < d.cfg.channels);
            assert!(b1 < d.cfg.ranks_per_channel * d.cfg.banks_per_rank);
        }
    }
}
