//! The multi-controller memory system of Figure 5.
//!
//! "State-of-the-art server architectures usually have 1–4 memory
//! controllers, and interleave pages across memory controllers, channels,
//! ranks, and banks" (§4.1). The paper's Figure 5 shows two controllers,
//! with the single PageForge module living in one of them. This wrapper
//! routes line addresses across `n` controllers (line-interleaved, the
//! same policy the single controller uses across its channels, so total
//! timing is invariant to how channels are grouped into controllers) and
//! aggregates their statistics.

use pageforge_obs::Registry;
use pageforge_types::{Cycle, LineAddr};

use crate::controller::{McConfig, McStats, MemSource, MemoryController, ReadGrant};
use crate::dram::DramStats;

/// Configuration of the full memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySystemConfig {
    /// Number of memory controllers (Figure 5 shows 2).
    pub controllers: usize,
    /// Per-controller configuration. The per-controller DRAM keeps its
    /// own channel count; lines are interleaved across controllers first.
    pub mc: McConfig,
}

impl MemorySystemConfig {
    /// The paper's organization: 2 controllers, each owning one of the two
    /// DDR channels (Table 2 + Figure 5).
    pub fn micro50() -> Self {
        let mut mc = McConfig::micro50();
        // The two channels of Table 2 are split one per controller;
        // controller-level interleave takes over the even/odd split.
        mc.dram.channels = 1;
        MemorySystemConfig { controllers: 2, mc }
    }
}

/// `n` memory controllers behind line-address interleaving.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemorySystemConfig,
    mcs: Vec<MemoryController>,
}

impl MemorySystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.controllers` is zero.
    pub fn new(cfg: MemorySystemConfig) -> Self {
        assert!(cfg.controllers > 0, "at least one controller required");
        MemorySystem {
            mcs: (0..cfg.controllers)
                .map(|_| MemoryController::new(cfg.mc))
                .collect(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.cfg
    }

    /// Which controller services `addr` (line-interleaved).
    pub fn route(&self, addr: LineAddr) -> usize {
        (addr.0 % self.cfg.controllers as u64) as usize
    }

    /// The controller index hosting the PageForge module (Figure 5 places
    /// it in one controller; we use controller 0).
    pub const PAGEFORGE_HOME: usize = 0;

    /// Number of controllers (the natural shard-domain count of the
    /// Figure 5 layout).
    pub fn controllers(&self) -> usize {
        self.cfg.controllers
    }

    /// Tags each controller with its owning execution domain
    /// (`domains[i]` for controller `i`). Structural metadata for the
    /// sharded simulator; never consulted by the timing model.
    ///
    /// # Panics
    ///
    /// Panics if `domains.len()` differs from the controller count.
    pub fn assign_domains(&mut self, domains: &[usize]) {
        assert_eq!(
            domains.len(),
            self.mcs.len(),
            "one domain tag per controller"
        );
        for (mc, &d) in self.mcs.iter_mut().zip(domains) {
            mc.set_domain(d);
        }
    }

    /// The execution domain owning the controller that services `addr`.
    pub fn domain_of(&self, addr: LineAddr) -> usize {
        self.mcs[self.route(addr)].domain()
    }

    /// Reads one line through the owning controller.
    pub fn read_line(&mut self, addr: LineAddr, now: Cycle, source: MemSource) -> ReadGrant {
        let mc = self.route(addr);
        // Strip the controller bits so the per-controller DRAM sees a
        // dense address space (its own channel/bank interleave applies
        // to the quotient).
        let local = LineAddr(addr.0 / self.cfg.controllers as u64);
        self.mcs[mc].read_line(local, now, source)
    }

    /// Writes one line through the owning controller.
    pub fn write_line(&mut self, addr: LineAddr, now: Cycle, source: MemSource) -> Cycle {
        let mc = self.route(addr);
        let local = LineAddr(addr.0 / self.cfg.controllers as u64);
        self.mcs[mc].write_line(local, now, source)
    }

    /// One controller, by index (for PageForge's ECC engine access).
    pub fn controller(&self, idx: usize) -> &MemoryController {
        &self.mcs[idx]
    }

    /// Mutable access to one controller.
    pub fn controller_mut(&mut self, idx: usize) -> &mut MemoryController {
        &mut self.mcs[idx]
    }

    /// Aggregated controller statistics.
    pub fn stats(&self) -> McStats {
        let mut total = McStats::default();
        for mc in &self.mcs {
            let s = mc.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.coalesced_reads += s.coalesced_reads;
            total.demand_lines += s.demand_lines;
            total.pageforge_lines += s.pageforge_lines;
            total.writeback_lines += s.writeback_lines;
        }
        total
    }

    /// Aggregated DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for mc in &self.mcs {
            let s = mc.dram_stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.row_hits += s.row_hits;
            total.row_misses += s.row_misses;
            total.bytes += s.bytes;
            total.queue_wait_cycles += s.queue_wait_cycles;
        }
        total
    }

    /// Controller and DRAM metrics summed across all controllers
    /// (`mem.controller.*` + `mem.dram.*`; counters add, the
    /// `queue_occupancy` gauge is the summed occupancy).
    pub fn export_metrics(&self) -> Registry {
        let mut total = Registry::new();
        for mc in &self.mcs {
            total.absorb(&mc.export_metrics());
        }
        total
    }

    /// Total bytes transferred in bandwidth-meter window `idx`, summed
    /// across controllers.
    pub fn window_bytes(&self, idx: usize) -> u64 {
        self.mcs
            .iter()
            .map(|mc| *mc.meter().windows().get(idx).unwrap_or(&0))
            .sum()
    }

    /// Number of meter windows any controller has recorded.
    pub fn window_count(&self) -> usize {
        self.mcs
            .iter()
            .map(|mc| mc.meter().windows().len())
            .max()
            .unwrap_or(0)
    }

    /// Total system bandwidth of window `idx` in GB/s.
    pub fn window_gbps(&self, idx: usize, cpu_hz: f64) -> f64 {
        let seconds = self.cfg.mc.meter_window as f64 / cpu_hz;
        self.window_bytes(idx) as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_lines_round_robin() {
        let sys = MemorySystem::new(MemorySystemConfig::micro50());
        assert_eq!(sys.route(LineAddr(0)), 0);
        assert_eq!(sys.route(LineAddr(1)), 1);
        assert_eq!(sys.route(LineAddr(2)), 0);
    }

    #[test]
    fn adjacent_lines_serve_in_parallel() {
        // Same property the single dual-channel controller had: even/odd
        // lines never serialize.
        let mut sys = MemorySystem::new(MemorySystemConfig::micro50());
        let a = sys.read_line(LineAddr(0), 0, MemSource::Demand);
        let b = sys.read_line(LineAddr(1), 0, MemSource::Demand);
        assert_eq!(a.ready_at, b.ready_at);
        assert_eq!(sys.stats().reads, 2);
        assert_eq!(sys.dram_stats().reads, 2);
    }

    #[test]
    fn coalescing_stays_per_controller() {
        let mut sys = MemorySystem::new(MemorySystemConfig::micro50());
        let a = sys.read_line(LineAddr(4), 0, MemSource::Demand);
        let b = sys.read_line(LineAddr(4), 5, MemSource::PageForge);
        assert!(b.coalesced);
        assert_eq!(a.ready_at, b.ready_at);
        // A different line on the other controller does not coalesce.
        let c = sys.read_line(LineAddr(5), 5, MemSource::Demand);
        assert!(!c.coalesced);
    }

    #[test]
    fn window_bytes_aggregate_across_controllers() {
        let mut sys = MemorySystem::new(MemorySystemConfig::micro50());
        sys.read_line(LineAddr(0), 0, MemSource::Demand);
        sys.read_line(LineAddr(1), 0, MemSource::Demand);
        assert_eq!(sys.window_bytes(0), 128);
        assert!(sys.window_count() >= 1);
        assert!(sys.window_gbps(0, 2e9) > 0.0);
    }

    #[test]
    fn pageforge_home_is_a_valid_controller() {
        let sys = MemorySystem::new(MemorySystemConfig::micro50());
        let _ = sys.controller(MemorySystem::PAGEFORGE_HOME);
    }

    #[test]
    #[should_panic(expected = "at least one controller")]
    fn zero_controllers_panics() {
        let _ = MemorySystem::new(MemorySystemConfig {
            controllers: 0,
            mc: McConfig::micro50(),
        });
    }

    #[test]
    fn single_controller_degenerates_to_plain_mc() {
        let mut one = MemorySystem::new(MemorySystemConfig {
            controllers: 1,
            mc: McConfig::micro50(),
        });
        let mut plain = MemoryController::new(McConfig::micro50());
        for addr in [0u64, 1, 2, 7, 100] {
            let a = one.read_line(LineAddr(addr), addr * 10, MemSource::Demand);
            let b = plain.read_line(LineAddr(addr), addr * 10, MemSource::Demand);
            assert_eq!(a, b, "addr {addr}");
        }
    }
}
