//! Host physical memory, guest mappings, copy-on-write, and page merging.
//!
//! This is the hypervisor-side state that same-page merging manipulates
//! (Figure 1 of the paper): each VM maps guest frame numbers to host
//! physical frames; merging repoints several guest mappings at one shared,
//! CoW-protected frame and frees the rest.

use std::fmt;

use pageforge_obs::{CounterId, Registry};
use pageforge_types::json::{obj, FromJson, ToJson, Value};
use pageforge_types::{Gfn, PageData, Ppn, VmId};

/// A host physical frame: its contents plus the CoW protection bit.
#[derive(Debug, Clone)]
struct Frame {
    data: PageData,
    cow: bool,
    /// Allocation epoch: frame numbers are recycled, so holders of a `Ppn`
    /// (e.g. KSM tree nodes) compare epochs to detect staleness.
    epoch: u64,
    /// Content version: bumped on every in-place mutation (unlike `epoch`,
    /// which only changes across reallocations). `(Ppn, epoch, version)`
    /// uniquely identifies page *contents*, so digest caches key on it.
    version: u64,
    /// Reverse mappings: every (VM, guest frame) currently mapping here.
    rmap: Vec<(VmId, Gfn)>,
}

/// Counters describing the merge state of a [`HostMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Frames currently allocated.
    pub allocated_frames: usize,
    /// Guest pages currently mapped (the footprint *without* merging).
    pub mapped_guest_pages: usize,
    /// Total successful merges performed.
    pub merges: u64,
    /// Total CoW breaks (writes to shared frames).
    pub cow_breaks: u64,
    /// Frames freed by merging, cumulative.
    pub frames_freed_by_merge: u64,
}

impl MemoryStats {
    /// Fraction of the unmerged footprint saved by merging, in `[0, 1)`.
    pub fn savings_fraction(&self) -> f64 {
        if self.mapped_guest_pages == 0 {
            return 0.0;
        }
        1.0 - self.allocated_frames as f64 / self.mapped_guest_pages as f64
    }
}

impl ToJson for MemoryStats {
    fn to_json(&self) -> Value {
        obj([
            ("allocated_frames", self.allocated_frames.to_json()),
            ("mapped_guest_pages", self.mapped_guest_pages.to_json()),
            ("merges", self.merges.to_json()),
            ("cow_breaks", self.cow_breaks.to_json()),
            (
                "frames_freed_by_merge",
                self.frames_freed_by_merge.to_json(),
            ),
        ])
    }
}

impl FromJson for MemoryStats {
    fn from_json(value: &Value) -> Option<Self> {
        Some(MemoryStats {
            allocated_frames: usize::from_json(value.get("allocated_frames")?)?,
            mapped_guest_pages: usize::from_json(value.get("mapped_guest_pages")?)?,
            merges: u64::from_json(value.get("merges")?)?,
            cow_breaks: u64::from_json(value.get("cow_breaks")?)?,
            frames_freed_by_merge: u64::from_json(value.get("frames_freed_by_merge")?)?,
        })
    }
}

/// Outcome of a guest write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The frame was private (or unprotected): written in place.
    InPlace(Ppn),
    /// The frame was shared and CoW-protected: a private copy was made for
    /// the writer and written instead.
    CowBroken {
        /// The writer's new private frame.
        new_frame: Ppn,
        /// The shared frame the writer was unmapped from.
        old_frame: Ppn,
    },
}

impl WriteOutcome {
    /// The frame that now holds the written data.
    pub fn frame(self) -> Ppn {
        match self {
            WriteOutcome::InPlace(p) => p,
            WriteOutcome::CowBroken { new_frame, .. } => new_frame,
        }
    }

    /// `true` if the write triggered a copy-on-write.
    pub fn broke_cow(self) -> bool {
        matches!(self, WriteOutcome::CowBroken { .. })
    }
}

/// Error returned by [`HostMemory::merge_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// One of the frames does not exist.
    NoSuchFrame(Ppn),
    /// The two frames do not have identical contents. Merging them would
    /// corrupt a guest; the final write-protected comparison (§3.5) exists
    /// precisely to catch this.
    ContentMismatch,
    /// Attempted to merge a frame into itself.
    SameFrame(Ppn),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoSuchFrame(p) => write!(f, "frame {p} does not exist"),
            MergeError::ContentMismatch => write!(f, "page contents differ"),
            MergeError::SameFrame(p) => write!(f, "cannot merge frame {p} into itself"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Host physical memory with per-VM guest mappings, reverse mappings,
/// copy-on-write, and page merging.
///
/// Deterministic by construction: frame numbers are handed out sequentially
/// (recycling freed frames LIFO) and all iteration runs in sorted order.
///
/// Frame numbers and guest frame numbers are dense small integers, so both
/// tables are flat arenas indexed by value: `translate`, `is_cow`, and
/// `frame_data` — the per-access hot path of the simulator's query loop —
/// are O(1) slice lookups rather than tree walks. The arenas grow on
/// demand and keep `None` holes for freed entries, preserving the exact
/// iteration orders (ascending `Ppn`, ascending `(VmId, Gfn)`) that the
/// byte-identity contract depends on.
#[derive(Debug, Clone)]
pub struct HostMemory {
    /// Frame arena indexed by `Ppn`; `None` marks a freed (recyclable) slot.
    frames: Vec<Option<Frame>>,
    /// Live entries in `frames`.
    live_frames: usize,
    /// Guest page tables: `guest[vm][gfn]` holds the mapped frame.
    guest: Vec<Vec<Option<Ppn>>>,
    /// Live mappings across all of `guest`.
    mapped_pages: usize,
    free_list: Vec<Ppn>,
    next_ppn: u64,
    epoch_counter: u64,
    version_counter: u64,
    metrics: Registry,
    ids: MemMetricIds,
    /// Guest pages whose translation or CoW status changed since the last
    /// [`take_spec_log`](Self::take_spec_log) drain. Only populated while
    /// [`set_spec_logging`](Self::set_spec_logging) is on; the speculative
    /// executor folds these into its published mapping view and uses a
    /// non-empty drain as a conflict/checkpoint signal. Conservative:
    /// entries may repeat or be no-ops, never missing.
    spec_log: Vec<(VmId, Gfn)>,
    spec_logging: bool,
}

/// Ids of the cumulative merge counters in the metric registry
/// (`mem.*` namespace; see OBSERVABILITY.md).
#[derive(Debug, Clone, Copy)]
struct MemMetricIds {
    merges: CounterId,
    cow_breaks: CounterId,
    frames_freed_by_merge: CounterId,
}

impl MemMetricIds {
    fn register(reg: &mut Registry) -> Self {
        MemMetricIds {
            merges: reg.counter("mem.merges"),
            cow_breaks: reg.counter("mem.cow_breaks"),
            frames_freed_by_merge: reg.counter("mem.frames_freed_by_merge"),
        }
    }
}

impl Default for HostMemory {
    fn default() -> Self {
        let mut metrics = Registry::new();
        let ids = MemMetricIds::register(&mut metrics);
        HostMemory {
            frames: Vec::new(),
            live_frames: 0,
            guest: Vec::new(),
            mapped_pages: 0,
            free_list: Vec::new(),
            next_ppn: 0,
            epoch_counter: 0,
            version_counter: 0,
            metrics,
            ids,
            spec_log: Vec::new(),
            spec_logging: false,
        }
    }
}

impl HostMemory {
    /// Creates an empty host memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns the speculation write log on or off (off by default, and
    /// off in every clone taken while logging was off). While on, every
    /// mutation that can change `translate` or `is_cow` for some guest
    /// page records that `(vm, gfn)` — see [`take_spec_log`](Self::take_spec_log).
    pub fn set_spec_logging(&mut self, on: bool) {
        self.spec_logging = on;
        if !on {
            self.spec_log.clear();
        }
    }

    /// Drains the guest pages touched since the previous drain. Empty
    /// (and free) unless [`set_spec_logging`](Self::set_spec_logging)
    /// enabled the log.
    pub fn take_spec_log(&mut self) -> Vec<(VmId, Gfn)> {
        std::mem::take(&mut self.spec_log)
    }

    fn spec_note(&mut self, vm: VmId, gfn: Gfn) {
        if self.spec_logging {
            self.spec_log.push((vm, gfn));
        }
    }

    /// Logs every current mapping of `ppn` — for mutations (merge,
    /// cow_protect) that change what a whole reverse-map of guests sees.
    fn spec_note_rmap(&mut self, ppn: Ppn) {
        if !self.spec_logging {
            return;
        }
        if let Some(frame) = self.frame(ppn) {
            let pairs: Vec<(VmId, Gfn)> = frame.rmap.clone();
            self.spec_log.extend(pairs);
        }
    }

    fn alloc_ppn(&mut self) -> Ppn {
        if let Some(p) = self.free_list.pop() {
            return p;
        }
        let p = Ppn(self.next_ppn);
        self.next_ppn += 1;
        p
    }

    fn frame(&self, ppn: Ppn) -> Option<&Frame> {
        self.frames.get(ppn.0 as usize)?.as_ref()
    }

    fn frame_mut(&mut self, ppn: Ppn) -> Option<&mut Frame> {
        self.frames.get_mut(ppn.0 as usize)?.as_mut()
    }

    /// Installs `frame` at `ppn`, growing the arena as needed.
    fn insert_frame(&mut self, ppn: Ppn, frame: Frame) {
        let idx = ppn.0 as usize;
        if idx >= self.frames.len() {
            self.frames.resize_with(idx + 1, || None);
        }
        debug_assert!(self.frames[idx].is_none(), "frame {ppn} double-allocated");
        self.frames[idx] = Some(frame);
        self.live_frames += 1;
    }

    fn remove_frame(&mut self, ppn: Ppn) -> Option<Frame> {
        let slot = self.frames.get_mut(ppn.0 as usize)?;
        let frame = slot.take()?;
        self.live_frames -= 1;
        Some(frame)
    }

    fn mapping(&self, vm: VmId, gfn: Gfn) -> Option<Ppn> {
        *self.guest.get(vm.0 as usize)?.get(gfn.0 as usize)?
    }

    /// Points `(vm, gfn)` at `ppn`, growing the page table as needed.
    /// Counts the mapping only when the slot was previously empty.
    fn set_mapping(&mut self, vm: VmId, gfn: Gfn, ppn: Ppn) {
        let v = vm.0 as usize;
        if v >= self.guest.len() {
            self.guest.resize_with(v + 1, Vec::new);
        }
        let table = &mut self.guest[v];
        let g = gfn.0 as usize;
        if g >= table.len() {
            table.resize(g + 1, None);
        }
        if table[g].replace(ppn).is_none() {
            self.mapped_pages += 1;
        }
    }

    fn clear_mapping(&mut self, vm: VmId, gfn: Gfn) -> Option<Ppn> {
        let ppn = self
            .guest
            .get_mut(vm.0 as usize)?
            .get_mut(gfn.0 as usize)?
            .take()?;
        self.mapped_pages -= 1;
        Some(ppn)
    }

    /// Allocates a fresh frame holding `data` and maps it at `(vm, gfn)`.
    ///
    /// # Panics
    ///
    /// Panics if `(vm, gfn)` is already mapped; unmap first.
    pub fn map_new_page(&mut self, vm: VmId, gfn: Gfn, data: PageData) -> Ppn {
        assert!(
            self.mapping(vm, gfn).is_none(),
            "({vm}, {gfn}) is already mapped"
        );
        let ppn = self.alloc_ppn();
        self.epoch_counter += 1;
        self.version_counter += 1;
        self.insert_frame(
            ppn,
            Frame {
                data,
                cow: false,
                epoch: self.epoch_counter,
                version: self.version_counter,
                rmap: vec![(vm, gfn)],
            },
        );
        self.set_mapping(vm, gfn, ppn);
        self.spec_note(vm, gfn);
        ppn
    }

    /// The allocation epoch of a frame: recycled frame numbers get a new
    /// epoch, so `(Ppn, epoch)` pairs uniquely identify an allocation.
    pub fn frame_epoch(&self, ppn: Ppn) -> Option<u64> {
        self.frame(ppn).map(|f| f.epoch)
    }

    /// The content version of a frame: unlike the epoch, this also changes
    /// on every in-place write, so `(epoch, version)` staleness checks let
    /// digest caches skip rehashing unchanged pages.
    pub fn frame_version(&self, ppn: Ppn) -> Option<u64> {
        self.frame(ppn).map(|f| f.version)
    }

    /// Translates a guest page to its host frame.
    pub fn translate(&self, vm: VmId, gfn: Gfn) -> Option<Ppn> {
        self.mapping(vm, gfn)
    }

    /// The contents of a frame, if it exists.
    pub fn frame_data(&self, ppn: Ppn) -> Option<&PageData> {
        self.frame(ppn).map(|f| &f.data)
    }

    /// Number of guest pages mapping a frame (0 if it does not exist).
    pub fn refcount(&self, ppn: Ppn) -> usize {
        self.frame(ppn).map_or(0, |f| f.rmap.len())
    }

    /// Whether a frame is CoW-protected.
    pub fn is_cow(&self, ppn: Ppn) -> bool {
        self.frame(ppn).is_some_and(|f| f.cow)
    }

    /// Marks a frame CoW-protected (write-protects all its mappings).
    ///
    /// # Panics
    ///
    /// Panics if the frame does not exist.
    pub fn cow_protect(&mut self, ppn: Ppn) {
        self.frame_mut(ppn)
            .unwrap_or_else(|| panic!("cow_protect: frame {ppn} does not exist"))
            .cow = true;
        self.spec_note_rmap(ppn);
    }

    /// Reads the page mapped at `(vm, gfn)`.
    pub fn guest_read(&self, vm: VmId, gfn: Gfn) -> Option<&PageData> {
        let ppn = self.translate(vm, gfn)?;
        self.frame_data(ppn)
    }

    /// Writes `bytes` at `offset` into the page mapped at `(vm, gfn)`,
    /// enforcing copy-on-write: if the target frame is shared and protected,
    /// the writer gets a private copy first (the OS behaviour described in
    /// §2.1: "the OS enforces the CoW policy by creating a copy of the page
    /// and providing it to the process that performed the write").
    ///
    /// # Panics
    ///
    /// Panics if `(vm, gfn)` is not mapped, or the write overruns the page.
    pub fn guest_write(&mut self, vm: VmId, gfn: Gfn, offset: usize, bytes: &[u8]) -> WriteOutcome {
        let ppn = self
            .translate(vm, gfn)
            .unwrap_or_else(|| panic!("guest_write: ({vm}, {gfn}) is not mapped"));
        let frame = self.frame_mut(ppn).expect("mapped frame exists");
        assert!(
            offset + bytes.len() <= pageforge_types::PAGE_SIZE,
            "write overruns the page"
        );
        if frame.cow {
            // Copy-on-write: give the writer a private copy. Like Linux KSM
            // pages, a CoW frame is *never* written in place — even a sole
            // mapper gets a fresh copy, keeping the merged (stable) frame
            // immutable for its whole lifetime.
            let mut copy = frame.data.clone();
            copy.as_bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
            frame.rmap.retain(|&m| m != (vm, gfn));
            let orphaned = frame.rmap.is_empty();
            self.clear_mapping(vm, gfn);
            self.metrics.inc(self.ids.cow_breaks);
            // Allocate the copy *before* freeing an orphaned frame so the
            // writer never receives the frame number it just left.
            let new_ppn = self.alloc_ppn();
            if orphaned {
                self.remove_frame(ppn);
                self.free_list.push(ppn);
            }
            self.epoch_counter += 1;
            self.version_counter += 1;
            self.insert_frame(
                new_ppn,
                Frame {
                    data: copy,
                    cow: false,
                    epoch: self.epoch_counter,
                    version: self.version_counter,
                    rmap: vec![(vm, gfn)],
                },
            );
            self.set_mapping(vm, gfn, new_ppn);
            self.spec_note(vm, gfn);
            WriteOutcome::CowBroken {
                new_frame: new_ppn,
                old_frame: ppn,
            }
        } else {
            frame.data.as_bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
            self.version_counter += 1;
            let stamp = self.version_counter;
            self.frame_mut(ppn).expect("mapped frame exists").version = stamp;
            WriteOutcome::InPlace(ppn)
        }
    }

    /// Merges frame `drop` into frame `keep`: verifies the contents are
    /// identical, repoints every mapping of `drop` at `keep`, CoW-protects
    /// `keep`, and frees `drop`.
    ///
    /// This is the `merge` step of Algorithm 1 (and what the hypervisor does
    /// when PageForge reports a duplicate).
    ///
    /// # Errors
    ///
    /// * [`MergeError::SameFrame`] if `keep == drop`;
    /// * [`MergeError::NoSuchFrame`] if either frame is unallocated;
    /// * [`MergeError::ContentMismatch`] if the contents differ (the
    ///   write-protected final comparison failed).
    pub fn merge_into(&mut self, keep: Ppn, drop: Ppn) -> Result<(), MergeError> {
        if keep == drop {
            return Err(MergeError::SameFrame(keep));
        }
        if self.frame(keep).is_none() {
            return Err(MergeError::NoSuchFrame(keep));
        }
        if self.frame(drop).is_none() {
            return Err(MergeError::NoSuchFrame(drop));
        }
        let equal = {
            let a = &self.frame(keep).expect("checked above").data;
            let b = &self.frame(drop).expect("checked above").data;
            a == b
        };
        if !equal {
            return Err(MergeError::ContentMismatch);
        }
        // Both reverse maps change meaning: `drop`'s mappings repoint at
        // `keep`, and `keep`'s existing mappings flip to CoW.
        self.spec_note_rmap(keep);
        let dropped = self.remove_frame(drop).expect("checked above");
        if self.spec_logging {
            self.spec_log.extend(dropped.rmap.iter().copied());
        }
        for &(vm, gfn) in &dropped.rmap {
            self.set_mapping(vm, gfn, keep);
        }
        let kept = self.frame_mut(keep).expect("checked above");
        kept.rmap.extend(dropped.rmap);
        kept.cow = true;
        self.free_list.push(drop);
        self.metrics.inc(self.ids.merges);
        self.metrics.inc(self.ids.frames_freed_by_merge);
        Ok(())
    }

    /// Unmaps `(vm, gfn)`, freeing the frame if this was the last mapping.
    /// Returns the frame it was mapped to, if any.
    pub fn unmap(&mut self, vm: VmId, gfn: Gfn) -> Option<Ppn> {
        let ppn = self.clear_mapping(vm, gfn)?;
        self.spec_note(vm, gfn);
        let frame = self.frame_mut(ppn).expect("mapped frame exists");
        frame.rmap.retain(|&m| m != (vm, gfn));
        if frame.rmap.is_empty() {
            self.remove_frame(ppn);
            self.free_list.push(ppn);
        }
        Some(ppn)
    }

    /// Number of frames currently allocated (the footprint *with* merging).
    pub fn allocated_frames(&self) -> usize {
        self.live_frames
    }

    /// Number of guest pages currently mapped (the footprint *without*
    /// merging).
    pub fn mapped_guest_pages(&self) -> usize {
        self.mapped_pages
    }

    /// All guest mappings of a frame.
    pub fn reverse_map(&self, ppn: Ppn) -> &[(VmId, Gfn)] {
        self.frame(ppn).map_or(&[], |f| &f.rmap)
    }

    /// Iterates over all allocated frames in frame-number order.
    pub fn iter_frames(&self) -> impl Iterator<Item = (Ppn, &PageData, bool)> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(p, slot)| slot.as_ref().map(|f| (Ppn(p as u64), &f.data, f.cow)))
    }

    /// Iterates over all guest mappings in (VM, GFN) order.
    pub fn iter_mappings(&self) -> impl Iterator<Item = (VmId, Gfn, Ppn)> + '_ {
        self.guest.iter().enumerate().flat_map(|(vm, table)| {
            table.iter().enumerate().filter_map(move |(gfn, slot)| {
                slot.map(|ppn| (VmId(vm as u32), Gfn(gfn as u64), ppn))
            })
        })
    }

    /// Snapshot of the merge statistics — a view assembled from the
    /// metric registry plus the live footprint gauges.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            allocated_frames: self.allocated_frames(),
            mapped_guest_pages: self.mapped_guest_pages(),
            merges: self.metrics.counter_value(self.ids.merges),
            cow_breaks: self.metrics.counter_value(self.ids.cow_breaks),
            frames_freed_by_merge: self.metrics.counter_value(self.ids.frames_freed_by_merge),
        }
    }

    /// The cumulative merge counters plus point-in-time footprint gauges
    /// as a metric registry (`mem.*` namespace), for aggregation into a
    /// simulation-wide snapshot.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = self.metrics.clone();
        let allocated = reg.gauge("mem.allocated_frames");
        reg.set(allocated, self.allocated_frames() as f64);
        let mapped = reg.gauge("mem.mapped_guest_pages");
        reg.set(mapped, self.mapped_guest_pages() as f64);
        reg
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// Invariants:
    /// 1. every guest mapping points at an allocated frame whose rmap
    ///    contains it;
    /// 2. every rmap entry is a live guest mapping pointing back at the
    ///    frame;
    /// 3. no frame has an empty rmap;
    /// 4. frames shared by >1 mapping are CoW-protected *only if* marked.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (vm, gfn, ppn) in self.iter_mappings() {
            let frame = self
                .frame(ppn)
                .ok_or_else(|| format!("mapping ({vm},{gfn})→{ppn} points at missing frame"))?;
            if !frame.rmap.contains(&(vm, gfn)) {
                return Err(format!("frame {ppn} rmap is missing ({vm},{gfn})"));
            }
        }
        for (idx, slot) in self.frames.iter().enumerate() {
            let Some(frame) = slot else { continue };
            let ppn = Ppn(idx as u64);
            if frame.rmap.is_empty() {
                return Err(format!("frame {ppn} has an empty rmap"));
            }
            for &(vm, gfn) in &frame.rmap {
                if self.mapping(vm, gfn) != Some(ppn) {
                    return Err(format!("rmap entry ({vm},{gfn}) of {ppn} is stale"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> PageData {
        PageData::from_fn(|_| b)
    }

    #[test]
    fn map_and_translate() {
        let mut mem = HostMemory::new();
        let p = mem.map_new_page(VmId(0), Gfn(1), page(1));
        assert_eq!(mem.translate(VmId(0), Gfn(1)), Some(p));
        assert_eq!(mem.translate(VmId(0), Gfn(2)), None);
        assert_eq!(mem.frame_data(p), Some(&page(1)));
        assert_eq!(mem.refcount(p), 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut mem = HostMemory::new();
        mem.map_new_page(VmId(0), Gfn(1), page(1));
        mem.map_new_page(VmId(0), Gfn(1), page(2));
    }

    #[test]
    fn merge_identical_pages() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        let b = mem.map_new_page(VmId(1), Gfn(9), page(7));
        mem.merge_into(a, b).unwrap();
        assert_eq!(mem.allocated_frames(), 1);
        assert_eq!(mem.mapped_guest_pages(), 2);
        assert_eq!(mem.translate(VmId(1), Gfn(9)), Some(a));
        assert_eq!(mem.refcount(a), 2);
        assert!(mem.is_cow(a));
        assert_eq!(mem.stats().merges, 1);
        assert!((mem.stats().savings_fraction() - 0.5).abs() < 1e-12);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn merge_rejects_different_contents() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let b = mem.map_new_page(VmId(0), Gfn(1), page(2));
        assert_eq!(mem.merge_into(a, b), Err(MergeError::ContentMismatch));
        assert_eq!(mem.allocated_frames(), 2);
    }

    #[test]
    fn merge_rejects_same_and_missing_frames() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        assert_eq!(mem.merge_into(a, a), Err(MergeError::SameFrame(a)));
        assert_eq!(
            mem.merge_into(a, Ppn(999)),
            Err(MergeError::NoSuchFrame(Ppn(999)))
        );
        assert_eq!(
            mem.merge_into(Ppn(999), a),
            Err(MergeError::NoSuchFrame(Ppn(999)))
        );
    }

    #[test]
    fn write_to_shared_frame_breaks_cow() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(7));
        mem.merge_into(a, b).unwrap();
        let outcome = mem.guest_write(VmId(1), Gfn(0), 10, &[99]);
        assert!(outcome.broke_cow());
        let new = outcome.frame();
        assert_ne!(new, a);
        assert_eq!(mem.translate(VmId(1), Gfn(0)), Some(new));
        // Writer sees the new byte; the other VM does not.
        assert_eq!(mem.guest_read(VmId(1), Gfn(0)).unwrap().as_bytes()[10], 99);
        assert_eq!(mem.guest_read(VmId(0), Gfn(0)).unwrap().as_bytes()[10], 7);
        assert_eq!(mem.refcount(a), 1);
        assert_eq!(mem.stats().cow_breaks, 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn write_to_private_frame_is_in_place() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let outcome = mem.guest_write(VmId(0), Gfn(0), 0, &[5, 6]);
        assert_eq!(outcome, WriteOutcome::InPlace(a));
        assert_eq!(mem.guest_read(VmId(0), Gfn(0)).unwrap().as_bytes()[1], 6);
        assert_eq!(mem.stats().cow_breaks, 0);
    }

    #[test]
    fn write_to_sole_mapper_cow_frame_still_copies() {
        // CoW frames are immutable for life (like Linux KSM pages): even
        // the last mapper gets a copy, and the orphaned frame is freed.
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        mem.cow_protect(a);
        let outcome = mem.guest_write(VmId(0), Gfn(0), 0, &[1]);
        assert!(outcome.broke_cow());
        assert_ne!(outcome.frame(), a);
        assert_eq!(mem.frame_data(a), None, "orphaned CoW frame is freed");
        assert_eq!(mem.allocated_frames(), 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn epochs_distinguish_recycled_frames() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let e1 = mem.frame_epoch(a).unwrap();
        mem.unmap(VmId(0), Gfn(0));
        assert_eq!(mem.frame_epoch(a), None);
        let b = mem.map_new_page(VmId(0), Gfn(1), page(2));
        assert_eq!(a, b, "frame number recycled");
        let e2 = mem.frame_epoch(b).unwrap();
        assert_ne!(e1, e2, "epoch must change across reallocation");
    }

    #[test]
    fn three_way_merge_then_all_write() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(3));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(3));
        let c = mem.map_new_page(VmId(2), Gfn(0), page(3));
        mem.merge_into(a, b).unwrap();
        mem.merge_into(a, c).unwrap();
        assert_eq!(mem.refcount(a), 3);
        assert_eq!(mem.allocated_frames(), 1);
        // Every writer breaks off a private copy; the stable frame is freed
        // once the last mapper leaves.
        assert!(mem.guest_write(VmId(1), Gfn(0), 0, &[1]).broke_cow());
        assert!(mem.guest_write(VmId(2), Gfn(0), 0, &[2]).broke_cow());
        assert!(mem.guest_write(VmId(0), Gfn(0), 0, &[3]).broke_cow());
        assert_eq!(mem.frame_data(a), None);
        assert_eq!(mem.allocated_frames(), 3);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn unmap_frees_last_mapping() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(1));
        mem.merge_into(a, b).unwrap();
        assert_eq!(mem.unmap(VmId(0), Gfn(0)), Some(a));
        assert_eq!(mem.allocated_frames(), 1); // still mapped by vm1
        assert_eq!(mem.unmap(VmId(1), Gfn(0)), Some(a));
        assert_eq!(mem.allocated_frames(), 0);
        assert_eq!(mem.unmap(VmId(1), Gfn(0)), None);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn freed_frames_are_recycled() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        mem.unmap(VmId(0), Gfn(0));
        let b = mem.map_new_page(VmId(0), Gfn(1), page(2));
        assert_eq!(a, b, "freed frame should be recycled");
    }

    #[test]
    fn reverse_map_tracks_mappings() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(5), page(9));
        let b = mem.map_new_page(VmId(3), Gfn(8), page(9));
        mem.merge_into(a, b).unwrap();
        let rmap = mem.reverse_map(a);
        assert!(rmap.contains(&(VmId(0), Gfn(5))));
        assert!(rmap.contains(&(VmId(3), Gfn(8))));
        assert_eq!(mem.reverse_map(Ppn(12345)), &[]);
    }

    #[test]
    fn spec_log_records_every_translation_change() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        let _b = mem.map_new_page(VmId(1), Gfn(0), page(7));
        assert!(
            mem.take_spec_log().is_empty(),
            "log is off during construction"
        );
        mem.set_spec_logging(true);

        // Merge: both the repointed mapping and the kept frame's prior
        // mapping (now CoW) are logged.
        let b = mem.translate(VmId(1), Gfn(0)).unwrap();
        mem.merge_into(a, b).unwrap();
        let mut log = mem.take_spec_log();
        log.sort_unstable();
        log.dedup();
        assert_eq!(log, vec![(VmId(0), Gfn(0)), (VmId(1), Gfn(0))]);

        // CoW break: the writer's translation changes.
        mem.guest_write(VmId(1), Gfn(0), 0, &[1]);
        assert!(mem.take_spec_log().contains(&(VmId(1), Gfn(0))));

        // In-place write: translate/is_cow unchanged, nothing logged.
        mem.guest_write(VmId(1), Gfn(0), 0, &[2]);
        assert!(mem.take_spec_log().is_empty());

        // cow_protect, map_new_page, unmap all log.
        let c = mem.translate(VmId(1), Gfn(0)).unwrap();
        mem.cow_protect(c);
        assert_eq!(mem.take_spec_log(), vec![(VmId(1), Gfn(0))]);
        mem.map_new_page(VmId(2), Gfn(5), page(9));
        assert_eq!(mem.take_spec_log(), vec![(VmId(2), Gfn(5))]);
        mem.unmap(VmId(2), Gfn(5));
        assert_eq!(mem.take_spec_log(), vec![(VmId(2), Gfn(5))]);

        // Turning the log off clears and stops recording.
        mem.set_spec_logging(false);
        mem.map_new_page(VmId(2), Gfn(6), page(9));
        assert!(mem.take_spec_log().is_empty());
        mem.check_invariants().unwrap();
    }

    #[test]
    fn stats_track_savings() {
        let mut mem = HostMemory::new();
        let keep = mem.map_new_page(VmId(0), Gfn(0), page(0));
        for vm in 1..10u32 {
            let p = mem.map_new_page(VmId(vm), Gfn(0), page(0));
            mem.merge_into(keep, p).unwrap();
        }
        let s = mem.stats();
        assert_eq!(s.allocated_frames, 1);
        assert_eq!(s.mapped_guest_pages, 10);
        assert_eq!(s.merges, 9);
        assert!((s.savings_fraction() - 0.9).abs() < 1e-12);
    }
}
