//! The event-driven full-system model.
//!
//! Each core runs one VM's query stream. The dispatcher executes tasks in
//! *slices* (≤ [`SLICE_CYCLES`]) so the migrating KSM kernel task can
//! preempt long-running queries at slice boundaries, the way the Linux
//! scheduler timeslices it against application threads. PageForge work
//! never occupies a core beyond the tiny Scan-Table refill/poll calls; its
//! memory traffic contends with demand traffic in the DRAM banks.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pageforge_cache::{HitLevel, SystemCaches};
use pageforge_core::{FlatFabric, PageForge};
use pageforge_ksm::Ksm;
use pageforge_mem::{MemSource, MemorySystem};
use pageforge_obs::{Registry, Snapshot};
use pageforge_types::stats::LatencyRecorder;
use pageforge_types::{Cycle, Gfn, VmId};
use pageforge_vm::{HostMemory, MemoryImage};
use pageforge_workloads::{AccessPattern, ArrivalProcess, Query};

use pageforge_faults::FaultInjector;

use crate::config::{DedupMode, SimConfig};
use crate::fabric::SimFabric;
use crate::result::{DedupSummary, DegradedSummary, SimResult};
use crate::shard::{ordered_map, DomainPlan, DomainQueues, ShardMetrics, ShardTally, EPOCH_CYCLES};

/// Maximum cycles a dispatcher slice may run before yielding.
pub const SLICE_CYCLES: Cycle = 100_000;

/// CFS-like timeslice for the KSM kernel task: after this many cycles the
/// daemon yields to queued application work on its core. Linux's scheduling
/// latency (~6 ms) divided by the 100× time scale is ~60 µs — 120k cycles
/// at 2 GHz. Fair-sharing at this granularity is what keeps a ⅔-duty
/// daemon from starving its host core outright while still stalling
/// queries for whole timeslices (the paper's tail-latency mechanism).
pub const KSM_TIMESLICE: Cycle = 120_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A query arrives at a core's queue.
    Arrival(usize),
    /// The core's dispatcher runs.
    Dispatch(usize),
    /// The dedup daemon wakes (KSM: enqueue a batch; PageForge: run an
    /// interval in the memory controller). The payload selects the
    /// PageForge module (always 0 for KSM).
    DedupWake(usize),
    /// Content churn tick.
    Churn,
    /// End of warm-up: statistics reset.
    WarmupEnd,
}

/// A query in execution (possibly across several slices).
#[derive(Debug)]
struct RunningQuery {
    arrival: Cycle,
    pattern: AccessPattern,
    accesses_left: u32,
    cpu_per_access: Cycle,
    tail_cpu_left: Cycle,
}

#[derive(Debug)]
enum Task {
    Query(RunningQuery),
    /// One KSM work interval (`pages_to_scan` candidates), not yet started.
    KsmBatch,
    /// An in-progress KSM interval with this much core time left; executed
    /// in [`KSM_TIMESLICE`] chunks, yielding to queued queries in between.
    KsmRun(Cycle),
    /// PageForge OS work (Scan Table refills/polls) of this many cycles.
    OsWork(Cycle),
}

struct CoreState {
    vm: VmId,
    arrivals: ArrivalProcess,
    pending: Option<Query>,
    queue: VecDeque<Task>,
    dispatching: bool,
    /// Core cycles spent on dedup work inside the measurement window.
    dedup_busy: Cycle,
    recorder: LatencyRecorder,
}

/// Precomputed page-region bounds for [`System::map_touch`]: the hot loop
/// resolves every touch through these integers instead of re-deriving them
/// from the profile's float fractions on each access.
#[derive(Debug, Clone, Copy)]
struct TouchRegions {
    /// Total pages in the VM's image.
    pages: u64,
    /// Pages in the mergeable (shared library/OS) region, clamped ≥ 1.
    mergeable: u64,
    /// Pages in the unmergeable (private) region, clamped ≥ 1.
    private: u64,
}

impl TouchRegions {
    fn for_profile(profile: &pageforge_vm::AppProfile) -> Self {
        let pages = profile.pages_per_vm as u64;
        TouchRegions {
            pages,
            mergeable: ((pages as f64 * (1.0 - profile.unmergeable_frac)) as u64).max(1),
            private: ((pages as f64 * profile.unmergeable_frac) as u64).max(1),
        }
    }
}

enum DedupState {
    None,
    Ksm(Box<Ksm>),
    /// One or more PageForge modules (§4.1), each owning a partition of
    /// the hint list.
    PageForge(Vec<PageForge>),
}

/// The assembled system.
pub struct System {
    cfg: SimConfig,
    mem: HostMemory,
    images: Vec<MemoryImage>,
    /// Per-core page-region bounds, precomputed from the profiles.
    regions: Vec<TouchRegions>,
    caches: SystemCaches,
    mems: MemorySystem,
    cores: Vec<CoreState>,
    dedup: DedupState,
    churn_rng: SmallRng,
    /// Per-domain event heaps; pop order is the canonical global
    /// `(cycle, seq)` total order regardless of shard count.
    events: DomainQueues<Event>,
    /// Static domain assignment (cores / modules / controllers).
    plan: DomainPlan,
    /// Cross-domain traffic staged per source domain within the current
    /// epoch, folded into `shard_metrics` at barrier crossings.
    shard_stage: Vec<ShardTally>,
    /// Totals across all barrier exchanges (`sim.shard.*` metrics).
    shard_metrics: ShardMetrics,
    /// Index of the epoch the clock currently sits in.
    epoch: u64,
    seq: u64,
    clock: Cycle,
    next_victim: usize,
    victim_intervals_left: u32,
    /// Alternation state for the skewed migration policy.
    victim_toggle: bool,
    /// Round-robin cursor over the non-preferred cores.
    victim_rr: usize,
    merged_during_run: u64,
    in_window: bool,
    queries_completed: u64,
}

impl System {
    /// Builds the system: generates the VM images, optionally pre-merges to
    /// steady state, and arms the initial events. Single-threaded
    /// construction — equivalent to [`with_shards`](Self::with_shards)
    /// with one thread.
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_shards(cfg, 1)
    }

    /// Builds the system with up to `threads` worker threads for the
    /// order-independent construction phases (per-VM image content
    /// synthesis). The thread count never affects any output byte:
    /// contents are a pure function of `(profile, vm, seed)`, computed
    /// via [`ordered_map`], and mapped into host memory sequentially in
    /// VM order so frame numbers come out identically.
    pub fn with_shards(cfg: SimConfig, threads: usize) -> Self {
        let modules = match &cfg.dedup {
            DedupMode::PageForge(_) => cfg.pf_modules.max(1),
            _ => 1,
        };
        let plan = DomainPlan::new(cfg.cores, cfg.mem.controllers, modules);

        let mut mem = HostMemory::new();
        // One image per VM, each from its own profile (heterogeneous mixes
        // share the full-span library groups via the common seed).
        // Synthesis fans out across shard workers; mapping stays
        // sequential in VM order (frame assignment order is part of the
        // byte-identity contract).
        let contents = ordered_map(threads, cfg.cores, |c| {
            cfg.profile_for(c)
                .generate_vm_page_contents(VmId(c as u32), cfg.seed)
        });
        let images: Vec<MemoryImage> = contents
            .into_iter()
            .enumerate()
            .map(|(c, vm_contents)| {
                let profile = cfg.profile_for(c);
                let mut pages = Vec::with_capacity(vm_contents.len());
                profile.map_vm_page_contents(&mut mem, VmId(c as u32), vm_contents, &mut pages);
                MemoryImage {
                    app: profile.name.clone(),
                    n_vms: 1,
                    pages,
                }
            })
            .collect();
        let hints: Vec<_> = images.iter().flat_map(|i| i.mergeable_hints()).collect();

        let mut dedup = match &cfg.dedup {
            DedupMode::None => DedupState::None,
            DedupMode::Ksm(k) => DedupState::Ksm(Box::new(Ksm::new(k.clone(), hints))),
            DedupMode::PageForge(p) => {
                let modules = cfg.pf_modules.max(1);
                // Partition the hint list round-robin across modules.
                let mut parts: Vec<Vec<_>> = vec![Vec::new(); modules];
                for (i, h) in hints.into_iter().enumerate() {
                    parts[i % modules].push(h);
                }
                DedupState::PageForge(
                    parts
                        .into_iter()
                        .map(|part| PageForge::new(p.clone(), part))
                        .collect(),
                )
            }
        };

        if cfg.premerge {
            // Reach merge steady state before timing starts (§5.3: the
            // paper measures with the merging algorithm at steady state).
            // Content-level only: a flat fabric keeps the timed MC clean.
            match &mut dedup {
                DedupState::None => {}
                DedupState::Ksm(ksm) => {
                    ksm.run_to_steady_state(&mut mem, 12);
                }
                DedupState::PageForge(pfs) => {
                    let mut flat = FlatFabric::all_dram(80);
                    // Alternate modules until both partitions are quiet: a
                    // duplicate pair may straddle partitions, so each module
                    // must see the other's stable pages... each keeps its
                    // own trees, so convergence needs both to finish.
                    for pf in pfs.iter_mut() {
                        pf.run_to_steady_state(&mut mem, &mut flat, 12);
                    }
                    if pfs.len() > 1 {
                        for pf in pfs.iter_mut() {
                            pf.run_to_steady_state(&mut mem, &mut flat, 12);
                        }
                    }
                }
            }
        }

        // Fault injection starts only after premerge: the plan's cycle
        // schedule is relative to the timed run, and premerge is a
        // content-level setup phase outside the fault model.
        if let (Some(plan), DedupState::PageForge(pfs)) = (&cfg.faults, &mut dedup) {
            let injector = FaultInjector::new(plan);
            for pf in pfs.iter_mut() {
                pf.set_fault_injector(Some(injector.clone()));
            }
        }

        let cores = (0..cfg.cores)
            .map(|c| CoreState {
                vm: VmId(c as u32),
                arrivals: ArrivalProcess::new(cfg.app_for(c).clone(), cfg.seed ^ (c as u64) << 17),
                pending: None,
                queue: VecDeque::new(),
                dispatching: false,
                dedup_busy: 0,
                recorder: LatencyRecorder::new(),
            })
            .collect();

        let mut mems = MemorySystem::new(cfg.mem);
        let controller_domains: Vec<usize> = (0..cfg.mem.controllers)
            .map(|c| plan.controller(c))
            .collect();
        mems.assign_domains(&controller_domains);

        let regions = (0..cfg.cores)
            .map(|c| TouchRegions::for_profile(cfg.profile_for(c)))
            .collect();

        let mut system = System {
            caches: SystemCaches::new(cfg.hierarchy),
            mems,
            cores,
            dedup,
            churn_rng: SmallRng::seed_from_u64(cfg.seed ^ 0xCAFE),
            events: DomainQueues::new(plan.domains()),
            shard_stage: vec![ShardTally::default(); plan.domains()],
            shard_metrics: ShardMetrics::default(),
            epoch: 0,
            plan,
            seq: 0,
            clock: 0,
            next_victim: 0,
            victim_intervals_left: 0,
            victim_toggle: false,
            victim_rr: 0,
            merged_during_run: 0,
            in_window: false,
            queries_completed: 0,
            mem,
            images,
            regions,
            cfg,
        };
        system.arm_initial_events();
        system
    }

    fn arm_initial_events(&mut self) {
        for core in 0..self.cfg.cores {
            let q = self.cores[core].arrivals.next_query();
            let at = q.arrival;
            self.cores[core].pending = Some(q);
            self.push(at, Event::Arrival(core));
        }
        match &self.dedup {
            DedupState::None => {}
            DedupState::Ksm(_) => self.push(0, Event::DedupWake(0)),
            DedupState::PageForge(pfs) => {
                for m in 0..pfs.len() {
                    self.push(0, Event::DedupWake(m));
                }
            }
        }
        if self.cfg.churn_interval > 0 {
            self.push(self.cfg.churn_interval, Event::Churn);
        }
        self.push(self.cfg.warmup_cycles, Event::WarmupEnd);
    }

    /// Domain that owns an event: core events follow the core's domain,
    /// engine wakeups follow the module's, global ticks live in domain 0.
    fn event_domain(&self, event: Event) -> usize {
        match event {
            Event::Arrival(core) | Event::Dispatch(core) => self.plan.core(core),
            Event::DedupWake(m) => match &self.dedup {
                DedupState::PageForge(_) => self.plan.module(m),
                _ => 0,
            },
            Event::Churn | Event::WarmupEnd => 0,
        }
    }

    fn push(&mut self, at: Cycle, event: Event) {
        self.seq += 1;
        let domain = self.event_domain(event);
        self.events.push(domain, at, self.seq, event);
    }

    /// Stages one DRAM line issued by `domain` as local or cross-domain
    /// traffic, depending on which domain's controller services it.
    fn stage_line(&mut self, domain: usize, addr: pageforge_types::LineAddr) {
        if self.mems.domain_of(addr) == domain {
            self.shard_stage[domain].local_lines += 1;
        } else {
            self.shard_stage[domain].xdomain_lines += 1;
        }
    }

    /// Runs the simulation to completion and collects the result.
    pub fn run(self) -> SimResult {
        self.run_observed().0
    }

    /// Runs the simulation and also returns the unified metric snapshot
    /// aggregated from every component registry (engine, driver, KSM,
    /// memory controllers, DRAM, host memory — see OBSERVABILITY.md).
    ///
    /// [`SimResult`]'s JSON shape is frozen by the determinism CI check,
    /// so the snapshot rides alongside instead of inside it.
    pub fn run_observed(mut self) -> (SimResult, Snapshot) {
        while let Some((_domain, t, _, event)) = self.events.pop() {
            self.clock = t.max(self.clock);
            // Barrier clock: when the global order crosses into a new
            // epoch, fold every domain's staged tally into the totals in
            // ascending domain order (the canonical exchange).
            let epochs_now = t / EPOCH_CYCLES;
            if epochs_now > self.epoch {
                self.shard_metrics.epochs += epochs_now - self.epoch;
                self.epoch = epochs_now;
                self.shard_metrics.exchange(&mut self.shard_stage);
            }
            match event {
                Event::Arrival(core) => self.on_arrival(core, t),
                Event::Dispatch(core) => self.on_dispatch(core, t),
                Event::DedupWake(m) => self.on_dedup_wake(t, m),
                Event::Churn => self.on_churn(t),
                Event::WarmupEnd => self.on_warmup_end(),
            }
        }
        // Final (partial-epoch) exchange so nothing staged is lost.
        self.shard_metrics.exchange(&mut self.shard_stage);
        let snapshot = self.export_metrics().snapshot();
        (self.collect(), snapshot)
    }

    /// Aggregates every component registry into one. Counters add across
    /// PageForge modules and memory controllers; gauges add too (summed
    /// occupancy / tree sizes), which is the meaningful system-level view.
    fn export_metrics(&self) -> Registry {
        let mut reg = Registry::new();
        reg.absorb(&self.mems.export_metrics());
        reg.absorb(&self.mem.export_metrics());
        match &self.dedup {
            DedupState::None => {}
            DedupState::Ksm(ksm) => reg.absorb(&ksm.export_metrics()),
            DedupState::PageForge(pfs) => {
                for pf in pfs {
                    reg.absorb(&pf.export_metrics());
                }
            }
        }
        let queries = reg.counter("sim.queries_completed");
        reg.add(queries, self.queries_completed);
        let merged = reg.counter("sim.merged_during_run");
        reg.add(merged, self.merged_during_run);
        let clock = reg.gauge("sim.clock");
        reg.set(clock, self.clock as f64);
        // Sharding metrics: all deterministic functions of the config and
        // the event stream, identical at every `--shards` level (the
        // thread count is deliberately never exported).
        let domains = reg.gauge("sim.shard.domains");
        reg.set(domains, self.plan.domains() as f64);
        let epochs = reg.counter("sim.shard.epochs");
        reg.add(epochs, self.shard_metrics.epochs);
        let exchanges = reg.counter("sim.shard.exchanges");
        reg.add(exchanges, self.shard_metrics.exchanges);
        let xdomain = reg.counter("sim.shard.xdomain_lines");
        reg.add(xdomain, self.shard_metrics.xdomain_lines);
        let local = reg.counter("sim.shard.local_lines");
        reg.add(local, self.shard_metrics.local_lines);
        let handoffs = reg.counter("sim.shard.table_handoffs");
        reg.add(handoffs, self.shard_metrics.table_handoffs);
        reg
    }

    fn on_arrival(&mut self, core: usize, t: Cycle) {
        // Invariant: an Arrival event is only ever scheduled together with
        // a `pending` query on its core (see `schedule_next_arrival`).
        let q = self.cores[core].pending.take().expect("pending query");
        debug_assert_eq!(q.arrival, t);
        let spec = self.cfg.app_for(core);
        let running = RunningQuery {
            arrival: q.arrival,
            pattern: AccessPattern::new(spec, q.pattern_seed),
            accesses_left: q.accesses.max(1),
            cpu_per_access: (q.service_cycles / u64::from(q.accesses.max(1))).max(1),
            tail_cpu_left: q.service_cycles % u64::from(q.accesses.max(1)),
        };
        self.cores[core].queue.push_back(Task::Query(running));

        // Draw the next arrival while the stream is within the horizon.
        let next = self.cores[core].arrivals.next_query();
        if next.arrival < self.cfg.horizon() {
            let at = next.arrival;
            self.cores[core].pending = Some(next);
            self.push(at, Event::Arrival(core));
        }
        self.wake_dispatcher(core, t);
    }

    fn wake_dispatcher(&mut self, core: usize, t: Cycle) {
        if !self.cores[core].dispatching && !self.cores[core].queue.is_empty() {
            self.cores[core].dispatching = true;
            self.push(t, Event::Dispatch(core));
        }
    }

    fn on_dispatch(&mut self, core: usize, t: Cycle) {
        let Some(task) = self.cores[core].queue.pop_front() else {
            self.cores[core].dispatching = false;
            return;
        };
        match task {
            Task::Query(mut rq) => {
                let (finished, end) = self.run_query_slice(core, &mut rq, t);
                if finished {
                    let latency = (end - rq.arrival) as f64;
                    if rq.arrival >= self.cfg.warmup_cycles && rq.arrival < self.cfg.horizon() {
                        self.cores[core].recorder.record(latency);
                        self.queries_completed += 1;
                    }
                } else {
                    self.cores[core].queue.push_front(Task::Query(rq));
                }
                self.push(end, Event::Dispatch(core));
            }
            Task::KsmBatch => {
                // Perform the content-level scan and its cache traffic up
                // front; the resulting core time is then consumed in
                // CFS-like timeslices.
                let duration = self.run_ksm_batch(core, t).saturating_sub(t).max(1);
                self.cores[core].queue.push_front(Task::KsmRun(duration));
                self.push(t, Event::Dispatch(core));
            }
            Task::KsmRun(remaining) => {
                let step = remaining.min(KSM_TIMESLICE);
                let end = t + step;
                if self.in_window {
                    self.cores[core].dedup_busy += step;
                }
                let left = remaining - step;
                if left > 0 {
                    // Yield: queued queries run before the next timeslice.
                    self.cores[core].queue.push_back(Task::KsmRun(left));
                } else if end < self.cfg.horizon() {
                    // Interval complete: the daemon sleeps, then migrates.
                    self.push(end + self.cfg.sleep_cycles(), Event::DedupWake(0));
                }
                self.push(end, Event::Dispatch(core));
            }
            Task::OsWork(cycles) => {
                let end = t + cycles;
                if self.in_window {
                    self.cores[core].dedup_busy += cycles;
                }
                self.push(end, Event::Dispatch(core));
            }
        }
    }

    /// Executes up to [`SLICE_CYCLES`] of a query; returns (finished, end).
    fn run_query_slice(
        &mut self,
        core: usize,
        rq: &mut RunningQuery,
        start: Cycle,
    ) -> (bool, Cycle) {
        let mut t = start;
        let budget_end = start + SLICE_CYCLES;
        let overlap = u64::from(self.cfg.overlap_x10.max(10));
        while rq.accesses_left > 0 && t < budget_end {
            t += rq.cpu_per_access;
            rq.accesses_left -= 1;
            let touch = rq.pattern.next_touch();
            let vm = self.cores[core].vm;
            let gfn = self.map_touch(core, touch.page_index);
            let Some(ppn) = self.mem.translate(vm, gfn) else {
                continue;
            };
            // Writes to CoW (merged) frames would fault in reality; the
            // synthetic pattern treats them as reads (content churn is
            // modeled separately).
            let write = touch.is_write && !self.mem.is_cow(ppn);
            let addr = ppn.line_addr(touch.line);
            let acc = self.caches.access(core, addr, write);
            let stall = if acc.level == HitLevel::Memory {
                self.stage_line(self.plan.core(core), addr);
                let grant = self.mems.read_line(addr, t, MemSource::Demand);
                acc.latency + (grant.ready_at - t)
            } else {
                acc.latency
            };
            // The L1-hit latency is already part of the CPU demand; charge
            // the excess, shrunk by the OoO overlap factor.
            let l1 = self.cfg.hierarchy.l1.latency;
            t += stall.saturating_sub(l1) * 10 / overlap;
        }
        if rq.accesses_left == 0 {
            t += rq.tail_cpu_left;
            rq.tail_cpu_left = 0;
            (true, t)
        } else {
            (false, t)
        }
    }

    /// Maps a pattern page index to a guest frame. The pattern indexes
    /// pages hottest-first; hot indices land on the VM's *private*
    /// (unmergeable) pages — the application's own data — and a small
    /// fixed fraction (1 in 16) of accesses divert to the shared
    /// library/zero region. Latency-critical apps touch their own state
    /// overwhelmingly; the mergeable half of memory is mostly cold OS and
    /// library pages (§6.1: "the large majority of them are OS pages"),
    /// which is why the paper's L3 miss rates barely move when those pages
    /// merge (Table 4).
    fn map_touch(&self, core: usize, page_index: usize) -> Gfn {
        let r = &self.regions[core];
        if page_index % 16 == 15 {
            // Shared-region access: the mergeable pages sit at the front
            // of the generated image.
            Gfn((page_index as u64 / 16) % r.mergeable)
        } else {
            // Private access: confined to the unmergeable region, which is
            // generated at the end of the image (hottest-last mapping).
            Gfn(r.pages - 1 - (page_index as u64 % r.private))
        }
    }

    /// Executes one KSM work interval on `core`: the content-level scan,
    /// then its memory traffic through the core's caches.
    fn run_ksm_batch(&mut self, core: usize, start: Cycle) -> Cycle {
        let DedupState::Ksm(ksm) = &mut self.dedup else {
            unreachable!("KsmBatch task without a KSM daemon");
        };
        let bypass = ksm.config().cache_bypass;
        let report = ksm.scan_interval(&mut self.mem);
        self.merged_during_run += report.merged;
        let mut t = start + report.cycles.total();
        let overlap = u64::from(self.cfg.overlap_x10.max(10));
        let l1 = self.cfg.hierarchy.l1.latency;
        for &(ppn, lines) in &report.work.touched {
            for line in 0..(lines as usize).min(pageforge_types::LINES_PER_PAGE) {
                let addr = ppn.line_addr(line);
                let stall = if bypass {
                    // §4.3: uncacheable reads — no allocation, no pollution,
                    // full memory latency on every line, and less MLP
                    // (uncached reads occupy MSHRs without the cache's
                    // overlap machinery): charge the stall unshrunk.
                    self.stage_line(self.plan.core(core), addr);
                    let grant = self.mems.read_line(addr, t, MemSource::Demand);
                    t += grant.ready_at - t;
                    continue;
                } else {
                    let acc = self.caches.access(core, addr, false);
                    if acc.level == HitLevel::Memory {
                        self.stage_line(self.plan.core(core), addr);
                        let grant = self.mems.read_line(addr, t, MemSource::Demand);
                        acc.latency + (grant.ready_at - t)
                    } else {
                        acc.latency
                    }
                };
                t += stall.saturating_sub(l1) * 10 / overlap;
            }
        }
        t
    }

    fn on_dedup_wake(&mut self, t: Cycle, module: usize) {
        if t >= self.cfg.horizon() {
            return;
        }
        match &mut self.dedup {
            DedupState::None => {}
            DedupState::Ksm(_) => {
                // Skewed sticky migration: the load balancer parks the
                // daemon on a *preferred* core (0) about half the time and
                // rotates it across the others otherwise, in stretches of
                // `ksm_sticky_intervals`. This reproduces Table 4's split:
                // every core sees episodes (tail latency inflates fleet-
                // wide) while the busiest core carries ~33% KSM cycles
                // against a ~6.8% average.
                if self.victim_intervals_left == 0 {
                    self.victim_toggle = !self.victim_toggle;
                    self.next_victim = if self.victim_toggle || self.cfg.cores == 1 {
                        0
                    } else {
                        let others = self.cfg.cores - 1;
                        self.victim_rr = (self.victim_rr + 1) % others;
                        1 + self.victim_rr
                    };
                    self.victim_intervals_left = self.cfg.ksm_sticky_intervals.max(1);
                }
                self.victim_intervals_left -= 1;
                let core = self.next_victim;
                self.cores[core].queue.push_front(Task::KsmBatch);
                self.wake_dispatcher(core, t);
            }
            DedupState::PageForge(pfs) => {
                let pf = &mut pfs[module];
                let domain = self.plan.module(module);
                let refills_before = pf.stats().refills;
                let mut fabric = SimFabric::new(&mut self.caches, &mut self.mems, domain);
                let report = pf.scan_interval(&mut self.mem, &mut fabric, t);
                // Stage the engine's DRAM locality tally and the Scan
                // Table slice handoffs this interval performed; both are
                // republished at the next epoch barrier.
                let tally = fabric.tally;
                self.shard_stage[domain].absorb(&tally);
                self.shard_stage[domain].table_handoffs += pf.stats().refills - refills_before;
                self.merged_during_run += report.merged;
                // The tiny OS-side work lands on a round-robin core.
                let core = self.next_victim;
                self.next_victim = (self.next_victim + 1) % self.cfg.cores;
                self.cores[core]
                    .queue
                    .push_front(Task::OsWork(report.os_cycles.max(1)));
                self.wake_dispatcher(core, t);
                let next = report.finished_at.max(t) + self.cfg.sleep_cycles();
                if next < self.cfg.horizon() {
                    self.push(next, Event::DedupWake(module));
                }
            }
        }
    }

    fn on_churn(&mut self, t: Cycle) {
        for (c, image) in self.images.iter().enumerate() {
            let churn = self.cfg.profiles[c % self.cfg.profiles.len()].churn;
            image.churn_step(&mut self.mem, &churn, &mut self.churn_rng);
        }
        let next = t + self.cfg.churn_interval;
        if next < self.cfg.horizon() {
            self.push(next, Event::Churn);
        }
    }

    fn on_warmup_end(&mut self) {
        self.caches.reset_stats();
        self.in_window = true;
        for core in &mut self.cores {
            core.dedup_busy = 0;
        }
    }

    fn collect(mut self) -> SimResult {
        let window = self.cfg.measure_cycles;
        let cpu_hz = pageforge_workloads::apps::CPU_HZ;
        // Bandwidth over the measurement window's meter slots, aggregated
        // across controllers.
        let win_cycles = self.cfg.mem.mc.meter_window;
        let first = (self.cfg.warmup_cycles / win_cycles) as usize;
        let last = (self.cfg.horizon() / win_cycles) as usize;
        let mut peak = 0.0f64;
        let mut total_bytes = 0u64;
        let mut slots = 0usize;
        for idx in first..last.min(self.mems.window_count()) {
            peak = peak.max(self.mems.window_gbps(idx, cpu_hz));
            total_bytes += self.mems.window_bytes(idx);
            slots += 1;
        }
        let mean = if slots == 0 {
            0.0
        } else {
            total_bytes as f64 / (slots as f64 * win_cycles as f64 / cpu_hz) / 1e9
        };

        let mut deg = DegradedSummary::default();
        let dedup = match &self.dedup {
            DedupState::None => None,
            DedupState::Ksm(ksm) => {
                let fracs: Vec<f64> = self
                    .cores
                    .iter()
                    .map(|c| c.dedup_busy as f64 / window as f64)
                    .collect();
                let cycles = &ksm.stats().cycles;
                Some(DedupSummary {
                    merged_total: ksm.stats().merged_stable + ksm.stats().merged_unstable,
                    core_cycles_frac_avg: fracs.iter().sum::<f64>() / fracs.len() as f64,
                    core_cycles_frac_max: fracs.iter().fold(0.0f64, |a, &b| a.max(b)),
                    compare_frac: cycles.compare_fraction(),
                    hash_frac: cycles.hash_fraction(),
                    engine_run_cycles_mean: 0.0,
                    engine_run_cycles_std: 0.0,
                    engine_lines_fetched: 0,
                })
            }
            DedupState::PageForge(pfs) => {
                let fracs: Vec<f64> = self
                    .cores
                    .iter()
                    .map(|c| c.dedup_busy as f64 / window as f64)
                    .collect();
                let mut run_cycles = pageforge_types::stats::RunningStats::new();
                let mut merged_total = 0;
                let mut lines = 0;
                for pf in pfs {
                    run_cycles.merge(&pf.engine_stats().run_cycles);
                    merged_total += pf.stats().merged_stable + pf.stats().merged_unstable;
                    lines += pf.engine_stats().lines_fetched;
                    deg.degraded_candidates += pf.stats().degraded_candidates;
                    deg.stall_retries += pf.stats().stall_retries;
                    deg.engine_errors += pf.stats().engine_errors;
                    deg.cross_check_skips += pf.stats().cross_check_skips;
                }
                Some(DedupSummary {
                    merged_total,
                    core_cycles_frac_avg: fracs.iter().sum::<f64>() / fracs.len() as f64,
                    core_cycles_frac_max: fracs.iter().fold(0.0f64, |a, &b| a.max(b)),
                    compare_frac: 0.0,
                    hash_frac: 0.0,
                    engine_run_cycles_mean: run_cycles.mean(),
                    engine_run_cycles_std: run_cycles.population_stddev(),
                    engine_lines_fetched: lines,
                })
            }
        };

        SimResult {
            label: self.cfg.dedup.label().to_string(),
            app: self.cfg.app_label(),
            per_vm_latency: self.cores.drain(..).map(|c| c.recorder).collect(),
            queries_completed: self.queries_completed,
            l3_miss_rate: self.caches.l3_stats().miss_rate(),
            bandwidth_mean_gbps: mean,
            bandwidth_peak_gbps: peak,
            mem_stats: self.mem.stats(),
            dedup,
            degraded: (!deg.is_zero()).then_some(deg),
            window_cycles: window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn run(app: &str, dedup: DedupMode, seed: u64) -> SimResult {
        System::new(SimConfig::quick(app, dedup, seed)).run()
    }

    #[test]
    fn baseline_completes_queries() {
        let r = run("silo", DedupMode::None, 1);
        assert!(r.queries_completed > 100, "{}", r.queries_completed);
        assert!(r.mean_sojourn() > 0.0);
        assert!(r.dedup.is_none());
        assert_eq!(r.label, "Baseline");
    }

    #[test]
    fn baseline_is_deterministic() {
        let a = run("silo", DedupMode::None, 7);
        let b = run("silo", DedupMode::None, 7);
        assert_eq!(a.queries_completed, b.queries_completed);
        assert_eq!(a.mean_sojourn(), b.mean_sojourn());
        assert_eq!(a.l3_miss_rate, b.l3_miss_rate);
    }

    #[test]
    fn seeds_change_outcomes() {
        let a = run("silo", DedupMode::None, 1);
        let b = run("silo", DedupMode::None, 2);
        assert_ne!(a.mean_sojourn(), b.mean_sojourn());
    }

    #[test]
    fn ksm_merges_and_costs_latency() {
        let base = run("silo", DedupMode::None, 3);
        let ksm = run("silo", DedupMode::Ksm(SimConfig::scaled_ksm()), 3);
        let d = ksm.dedup.as_ref().expect("KSM summary");
        assert!(d.merged_total > 0, "KSM merged nothing");
        assert!(d.core_cycles_frac_avg > 0.0);
        assert!(d.core_cycles_frac_max >= d.core_cycles_frac_avg);
        assert!(
            ksm.mean_sojourn() > base.mean_sojourn(),
            "KSM should add latency: base {} vs ksm {}",
            base.mean_sojourn(),
            ksm.mean_sojourn()
        );
        assert!(
            ksm.mem_stats.allocated_frames < base.mem_stats.allocated_frames,
            "KSM should save memory"
        );
    }

    #[test]
    fn pageforge_merges_with_less_overhead_than_ksm() {
        let base = run("silo", DedupMode::None, 4);
        let ksm = run("silo", DedupMode::Ksm(SimConfig::scaled_ksm()), 4);
        let pf = run(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            4,
        );
        let pd = pf.dedup.as_ref().expect("PF summary");
        assert!(pd.merged_total > 0);
        assert!(pd.engine_run_cycles_mean > 0.0);
        // The headline result, in miniature: PageForge's latency overhead
        // is well below KSM's.
        let ksm_over = ksm.mean_sojourn() / base.mean_sojourn();
        let pf_over = pf.mean_sojourn() / base.mean_sojourn();
        assert!(
            pf_over < ksm_over,
            "PageForge ({pf_over:.3}×) should beat KSM ({ksm_over:.3}×)"
        );
        // And identical memory savings.
        assert_eq!(
            pf.mem_stats.allocated_frames,
            ksm.mem_stats.allocated_frames
        );
    }

    #[test]
    fn pageforge_core_theft_is_negligible() {
        let pf = run(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            5,
        );
        let d = pf.dedup.as_ref().unwrap();
        assert!(
            d.core_cycles_frac_avg < 0.01,
            "PF core usage should be <1%, got {}",
            d.core_cycles_frac_avg
        );
    }

    #[test]
    fn dedup_consumes_bandwidth() {
        let base = run("silo", DedupMode::None, 6);
        let pf = run(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            6,
        );
        assert!(pf.bandwidth_peak_gbps > base.bandwidth_peak_gbps);
        assert!(pf.bandwidth_peak_gbps >= pf.bandwidth_mean_gbps);
    }

    #[test]
    fn sphinx_long_queries_run() {
        // Sphinx queries are huge; just a few must still complete and be
        // multi-slice.
        let mut cfg = SimConfig::quick("sphinx", DedupMode::None, 1);
        cfg.measure_cycles = 60_000_000;
        let r = System::new(cfg).run();
        assert!(r.queries_completed >= 2, "{}", r.queries_completed);
    }

    #[test]
    fn map_touch_respects_regions() {
        let cfg = SimConfig::quick("silo", DedupMode::None, 1);
        let sys = System::new(cfg);
        let profile = sys.cfg.profile_for(0);
        let pages = profile.pages_per_vm as u64;
        let mergeable = (pages as f64 * (1.0 - profile.unmergeable_frac)) as u64;
        let unmergeable_start = pages - ((pages as f64 * profile.unmergeable_frac) as u64).max(1);
        let mut shared = 0usize;
        let total = 4096;
        for idx in 0..total {
            let gfn = sys.map_touch(0, idx);
            assert!(gfn.0 < pages, "gfn in range");
            if idx % 16 == 15 {
                shared += 1;
                assert!(gfn.0 < mergeable, "shared access lands in mergeable region");
            } else {
                assert!(
                    gfn.0 >= unmergeable_start,
                    "private access {idx} -> {gfn} must land in the unmergeable region"
                );
            }
        }
        // Exactly 1/16 of accesses divert to the shared region.
        assert_eq!(shared, total / 16);
    }

    #[test]
    fn heterogeneous_mix_runs_and_merges() {
        let mut cfg = SimConfig::heterogeneous(
            &["silo", "masstree", "img_dnn", "moses"],
            DedupMode::Ksm(SimConfig::scaled_ksm()),
            9,
        );
        cfg.cores = 4;
        cfg.hierarchy = pageforge_cache::HierarchyConfig::micro50(4);
        cfg.hierarchy.l3.size_bytes = 1 << 20;
        for p in &mut cfg.profiles {
            p.pages_per_vm = 256;
        }
        cfg.warmup_cycles = 2_000_000;
        cfg.measure_cycles = 20_000_000;
        if let DedupMode::Ksm(k) = &mut cfg.dedup {
            k.pages_to_scan = 16;
        }
        let r = System::new(cfg).run();
        assert_eq!(r.app, "mixed");
        assert!(r.queries_completed > 0);
        // Cross-app merging still happens: the shared guest-OS library
        // groups are identical across profiles.
        assert!(
            r.mem_stats.allocated_frames < r.mem_stats.mapped_guest_pages,
            "mixed VMs still share library pages"
        );
    }

    #[test]
    fn run_observed_snapshot_covers_components() {
        let cfg = SimConfig::quick(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            4,
        );
        let (r, snap) = System::new(cfg).run_observed();
        assert!(snap.counter("engine.comparisons").unwrap() > 0);
        assert!(snap.counter("pageforge.candidates").unwrap() > 0);
        assert!(snap.counter("mem.dram.reads").unwrap() > 0);
        assert!(snap.counter("mem.merges").unwrap() > 0);
        assert_eq!(
            snap.counter("sim.queries_completed"),
            Some(r.queries_completed)
        );
        // The snapshot rides alongside SimResult: same run, same numbers.
        let plain = System::new(SimConfig::quick(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            4,
        ))
        .run();
        assert_eq!(plain.queries_completed, r.queries_completed);
    }

    #[test]
    fn ksm_snapshot_exports_tree_metrics() {
        let cfg = SimConfig::quick("silo", DedupMode::Ksm(SimConfig::scaled_ksm()), 3);
        let (_, snap) = System::new(cfg).run_observed();
        assert!(snap.counter("ksm.passes").is_some());
        assert!(snap.gauge("ksm.stable_tree.size").unwrap() > 0.0);
        assert!(snap.gauge("ksm.stable_tree.depth").unwrap() > 0.0);
    }

    #[test]
    fn l3_misses_observed() {
        let r = run("masstree", DedupMode::None, 8);
        assert!(r.l3_miss_rate > 0.0 && r.l3_miss_rate < 1.0);
    }

    #[test]
    fn shard_thread_count_never_changes_output() {
        use pageforge_types::json::ToJson;
        let cell = |threads| {
            let cfg = SimConfig::quick(
                "silo",
                DedupMode::PageForge(SimConfig::scaled_pageforge()),
                11,
            );
            let (r, snap) = System::with_shards(cfg, threads).run_observed();
            (
                r.to_json().to_string_compact(),
                snap.to_json().to_string_compact(),
            )
        };
        let one = cell(1);
        assert_eq!(one, cell(2), "2 threads must be byte-identical");
        assert_eq!(one, cell(4), "4 threads must be byte-identical");
    }

    #[test]
    fn shard_metrics_are_exported_and_consistent() {
        let cfg = SimConfig::quick(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            11,
        );
        let (_, snap) = System::with_shards(cfg, 2).run_observed();
        // Figure 5: two controllers, one module -> 2 domains.
        assert_eq!(snap.gauge("sim.shard.domains"), Some(2.0));
        assert!(snap.counter("sim.shard.epochs").unwrap() > 0);
        assert!(snap.counter("sim.shard.exchanges").unwrap() > 0);
        // Line-interleaved controllers: a 2-domain run must see both
        // local and cross-domain engine lines, and the driver must have
        // handed slices to the engine.
        assert!(snap.counter("sim.shard.xdomain_lines").unwrap() > 0);
        assert!(snap.counter("sim.shard.local_lines").unwrap() > 0);
        assert!(snap.counter("sim.shard.table_handoffs").unwrap() > 0);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        use pageforge_types::json::ToJson;
        let plain = System::new(SimConfig::smoke(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            12,
        ))
        .run();
        let mut cfg = SimConfig::smoke(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            12,
        );
        cfg.faults = Some(pageforge_faults::FaultPlan::empty());
        let faulted = System::new(cfg).run();
        assert_eq!(
            plain.to_json().to_string_compact(),
            faulted.to_json().to_string_compact(),
            "an empty plan must leave results byte-identical"
        );
    }

    #[test]
    fn fault_plan_degrades_but_run_completes() {
        let mut cfg = SimConfig::smoke(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            13,
        );
        // A dense plan: an event roughly every 10k cycles plus stall
        // windows, guaranteeing the injector actually fires.
        cfg.faults = Some(pageforge_faults::FaultPlan::generate(
            13,
            cfg.horizon(),
            (cfg.horizon() / 10_000) as usize,
            4,
            200_000,
        ));
        let r = System::new(cfg).run();
        assert!(r.queries_completed > 0, "faulted system still serves");
        // Merging still happens and never merges differing pages:
        // HostMemory::merge_into verifies content equality internally.
        assert!(r.mem_stats.merges > 0, "faulted system still merges");
    }
}
