//! Fleet-level fault plans: host crashes, gray slowdowns, engine wedges,
//! and migration failures, scheduled by control-plane *tick*.
//!
//! A [`FleetFaultPlan`] is the control-plane counterpart of the engine's
//! [`FaultPlan`](crate::FaultPlan): all randomness is spent at
//! [`generate`](FleetFaultPlan::generate) time, the plan serializes to
//! versioned JSON for archival/CI, and replay is a pure function of the
//! tick number — the fleet's `ControlPlane` resolves every host's health
//! from the plan alone, so a chaos run is as reproducible as a clean one.
//!
//! The four event classes map onto the failure taxonomy of DESIGN.md §7:
//!
//! * **Crash** — the host goes dark for `down_ticks`; its queue is
//!   dropped and its residents are evacuated over the live-migration
//!   path. The host rejoins empty once the window elapses *and* the
//!   evacuation has drained.
//! * **GraySlow** — a gray host: still up, but its per-tick scan budget
//!   is divided by `factor` for `for_ticks`. Quarantined (no new
//!   admissions) while slow.
//! * **Wedge** — the host's engine stalls unconditionally, driving every
//!   hardware batch past the driver's retry budget and into the
//!   software-KSM degraded path (PR 3's graceful-degradation machinery).
//! * **MigrationFail** — arms one mid-copy failure for the next
//!   rebalancer migration sourced from `host`; the control plane rolls
//!   back, leaving the source authoritative.

use pageforge_types::json::{obj, FromJson, ToJson, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::plan::{check_version, u64_field, version_accepted, PLAN_VERSION};

/// One scheduled host-level fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetFaultEvent {
    /// Control-plane tick at which the fault fires.
    pub at_tick: u64,
    /// Target host index. Events naming a host outside the fleet are
    /// skipped (and counted) rather than rejected, so one plan can be
    /// replayed against fleets of any size.
    pub host: u32,
    /// What happens to the host.
    pub kind: FleetFaultKind,
}

/// The fleet fault classes (DESIGN.md §7's failure taxonomy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFaultKind {
    /// Host crash: down (dark, queue dropped, residents evacuated) for
    /// `down_ticks` ticks.
    Crash {
        /// Ticks the host stays dark before rejoining empty.
        down_ticks: u64,
    },
    /// Gray host: scan budget divided by `factor` for `for_ticks`.
    GraySlow {
        /// Window length in ticks.
        for_ticks: u64,
        /// Step-cost multiplier (budget divisor), at least 2.
        factor: u32,
    },
    /// Engine wedge: the host's injector reports a permanent stall for
    /// `for_ticks`, forcing the software-KSM degraded path.
    Wedge {
        /// Window length in ticks.
        for_ticks: u64,
    },
    /// Arms one mid-copy failure for the next rebalancer migration
    /// sourced from the event's host.
    MigrationFail,
}

impl FleetFaultKind {
    /// Short class tag (JSON discriminant).
    pub fn tag(&self) -> &'static str {
        match self {
            FleetFaultKind::Crash { .. } => "crash",
            FleetFaultKind::GraySlow { .. } => "gray",
            FleetFaultKind::Wedge { .. } => "wedge",
            FleetFaultKind::MigrationFail => "migfail",
        }
    }
}

/// A complete fleet fault schedule: the seed it derives from plus the
/// events sorted by firing tick.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetFaultPlan {
    /// Seed the plan was generated from (informational once serialized).
    pub seed: u64,
    /// Events, sorted by [`FleetFaultEvent::at_tick`].
    pub events: Vec<FleetFaultEvent>,
}

impl FleetFaultPlan {
    /// The no-fault plan: the chaos phases become no-ops.
    pub fn empty() -> Self {
        FleetFaultPlan::default()
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a mixed-class plan against a fleet of `hosts` hosts and
    /// a `ticks`-tick horizon: `crashes` host crashes (fired in the
    /// middle half of the run so evacuation and recovery both fit),
    /// `grays` gray-slowdown windows, `wedges` engine wedges, and
    /// `migration_fails` armed mid-copy failures. All randomness is
    /// spent here; the returned plan replays purely.
    ///
    /// ```
    /// use pageforge_faults::FleetFaultPlan;
    /// let a = FleetFaultPlan::generate(7, 8, 2_000, 2, 2, 2, 2);
    /// let b = FleetFaultPlan::generate(7, 8, 2_000, 2, 2, 2, 2);
    /// assert_eq!(a, b); // fully deterministic
    /// assert_eq!(a.events.len(), 8);
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        seed: u64,
        hosts: u32,
        ticks: u64,
        crashes: usize,
        grays: usize,
        wedges: usize,
        migration_fails: usize,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1EE7);
        let hosts = hosts.max(1);
        let ticks = ticks.max(16);
        let mut events = Vec::new();
        for _ in 0..crashes {
            let down = (ticks / 8).max(4);
            events.push(FleetFaultEvent {
                at_tick: rng.gen_range(ticks / 4..ticks * 3 / 4),
                host: rng.gen_range(0..hosts),
                kind: FleetFaultKind::Crash {
                    down_ticks: rng.gen_range(down / 2 + 1..down + 1),
                },
            });
        }
        for _ in 0..grays {
            events.push(FleetFaultEvent {
                at_tick: rng.gen_range(1..ticks * 3 / 4),
                host: rng.gen_range(0..hosts),
                kind: FleetFaultKind::GraySlow {
                    for_ticks: rng.gen_range(ticks / 16 + 1..ticks / 4 + 2),
                    factor: rng.gen_range(2..5),
                },
            });
        }
        for _ in 0..wedges {
            events.push(FleetFaultEvent {
                at_tick: rng.gen_range(1..ticks * 3 / 4),
                host: rng.gen_range(0..hosts),
                kind: FleetFaultKind::Wedge {
                    for_ticks: rng.gen_range(ticks / 16 + 1..ticks / 4 + 2),
                },
            });
        }
        for _ in 0..migration_fails {
            events.push(FleetFaultEvent {
                at_tick: rng.gen_range(1..ticks),
                host: rng.gen_range(0..hosts),
                kind: FleetFaultKind::MigrationFail,
            });
        }
        // Stable by firing tick: class grouping above breaks ties
        // deterministically.
        events.sort_by_key(|e| e.at_tick);
        FleetFaultPlan { seed, events }
    }

    /// Reads a plan from a JSON file, rejecting future-versioned plans
    /// with a message naming the supported version
    /// ([`PLAN_VERSION`](crate::PLAN_VERSION)).
    pub fn read_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value =
            pageforge_types::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        check_version(&value, path)?;
        Self::from_json(&value).ok_or_else(|| format!("{}: not a fleet fault plan", path.display()))
    }

    /// Writes the plan as compact JSON.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string_compact())
    }
}

impl ToJson for FleetFaultEvent {
    fn to_json(&self) -> Value {
        let mut fields: Vec<(&'static str, Value)> = vec![
            ("at", self.at_tick.to_json()),
            ("host", u64::from(self.host).to_json()),
            ("kind", self.kind.tag().to_owned().to_json()),
        ];
        match &self.kind {
            FleetFaultKind::Crash { down_ticks } => {
                fields.push(("down_ticks", down_ticks.to_json()));
            }
            FleetFaultKind::GraySlow { for_ticks, factor } => {
                fields.push(("for_ticks", for_ticks.to_json()));
                fields.push(("factor", u64::from(*factor).to_json()));
            }
            FleetFaultKind::Wedge { for_ticks } => {
                fields.push(("for_ticks", for_ticks.to_json()));
            }
            FleetFaultKind::MigrationFail => {}
        }
        obj(fields)
    }
}

impl FromJson for FleetFaultEvent {
    fn from_json(value: &Value) -> Option<Self> {
        let at_tick = u64_field(value, "at")?;
        let host = u32::try_from(u64_field(value, "host")?).ok()?;
        let kind = match String::from_json(value.get("kind")?)?.as_str() {
            "crash" => FleetFaultKind::Crash {
                down_ticks: u64_field(value, "down_ticks")?,
            },
            "gray" => FleetFaultKind::GraySlow {
                for_ticks: u64_field(value, "for_ticks")?,
                factor: u32::try_from(u64_field(value, "factor")?).ok()?,
            },
            "wedge" => FleetFaultKind::Wedge {
                for_ticks: u64_field(value, "for_ticks")?,
            },
            "migfail" => FleetFaultKind::MigrationFail,
            _ => return None,
        };
        Some(FleetFaultEvent {
            at_tick,
            host,
            kind,
        })
    }
}

impl ToJson for FleetFaultPlan {
    fn to_json(&self) -> Value {
        obj([
            ("version", u64::from(PLAN_VERSION).to_json()),
            ("seed", self.seed.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl FromJson for FleetFaultPlan {
    fn from_json(value: &Value) -> Option<Self> {
        if !version_accepted(value) {
            return None;
        }
        Some(FleetFaultPlan {
            seed: u64_field(value, "seed")?,
            events: Vec::from_json(value.get("events")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FleetFaultPlan::empty().is_empty());
        assert!(!FleetFaultPlan::generate(1, 4, 160, 1, 0, 0, 0).is_empty());
    }

    #[test]
    fn generation_is_deterministic_sorted_and_complete() {
        let a = FleetFaultPlan::generate(42, 8, 2_000, 3, 3, 3, 3);
        let b = FleetFaultPlan::generate(42, 8, 2_000, 3, 3, 3, 3);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 12);
        assert!(a.events.windows(2).all(|w| w[0].at_tick <= w[1].at_tick));
        for tag in ["crash", "gray", "wedge", "migfail"] {
            assert!(
                a.events.iter().any(|e| e.kind.tag() == tag),
                "missing class {tag}"
            );
        }
        assert!(a.events.iter().all(|e| e.host < 8));
        assert_ne!(a, FleetFaultPlan::generate(43, 8, 2_000, 3, 3, 3, 3));
    }

    #[test]
    fn crashes_leave_room_to_recover() {
        let plan = FleetFaultPlan::generate(5, 4, 160, 8, 0, 0, 0);
        for e in &plan.events {
            let FleetFaultKind::Crash { down_ticks } = e.kind else {
                panic!("only crashes requested");
            };
            assert!(e.at_tick >= 40 && e.at_tick < 120, "at {}", e.at_tick);
            assert!(e.at_tick + down_ticks < 160, "recovery fits the horizon");
        }
    }

    #[test]
    fn json_round_trip() {
        let plan = FleetFaultPlan::generate(9, 6, 400, 2, 2, 2, 2);
        let text = plan.to_json().to_string_compact();
        assert!(text.contains("\"version\":1"), "{text}");
        let parsed =
            FleetFaultPlan::from_json(&pageforge_types::json::parse(&text).unwrap()).unwrap();
        assert_eq!(plan, parsed);
    }

    #[test]
    fn file_round_trip_and_version_rejection() {
        let dir = std::env::temp_dir().join("pageforge-fleet-plan-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        let plan = FleetFaultPlan::generate(11, 4, 160, 1, 1, 1, 1);
        plan.write_file(&path).unwrap();
        assert_eq!(FleetFaultPlan::read_file(&path).unwrap(), plan);

        let future = dir.join("future.json");
        std::fs::write(&future, r#"{"version":7,"seed":0,"events":[]}"#).unwrap();
        let err = FleetFaultPlan::read_file(&future).unwrap_err();
        assert!(err.contains("plan version 7 is not supported"), "{err}");
        assert!(err.contains("reads version 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unversioned_plans_parse_as_version_one() {
        let value = pageforge_types::json::parse(
            r#"{"seed":3,"events":[{"at":10,"host":1,"kind":"migfail"}]}"#,
        )
        .unwrap();
        let plan = FleetFaultPlan::from_json(&value).unwrap();
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.events[0].kind, FleetFaultKind::MigrationFail);
    }
}
