//! Regenerates Table 5: PageForge design characteristics — Scan-Table
//! processing cycles and the area/power model.

use pageforge_bench::args::print_table2;
use pageforge_bench::{experiments, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    if args.print_config {
        print_table2();
        return;
    }
    let t = experiments::table5(args.seed, args.scale());
    t.print();
    t.write_json(&args.out_dir, "table5_design");
}
