//! Deterministic fault injection for the PageForge reproduction.
//!
//! PageForge's safety argument (§3.3 of the paper) is that the ECC-derived
//! hash keys are only *hints*: a corrupted or colliding key must never
//! cause a wrong merge, because the engine always performs a full pairwise
//! comparison and the final `merge_into` re-verifies content. The (72,64)
//! SECDED codec underneath corrects single-bit and detects double-bit DRAM
//! errors. This crate is the adversarial half of that argument: it
//! schedules faults against the hardware path and accounts for what the
//! stack did with each one.
//!
//! | Module | Provides |
//! |--------|----------|
//! | [`plan`] | [`FaultPlan`]: a seed-derived, JSON-serializable schedule of [`FaultEvent`]s by cycle plus engine [`StallWindow`]s |
//! | [`inject`] | [`FaultInjector`]: consumes a plan against the engine's own deterministic fetch/cycle stream, corrupting line views, ECC hints, and Scan Table entries, and exporting `faults.*` outcome counters |
//! | [`fleet`] | [`FleetFaultPlan`]: the control-plane counterpart — host crashes, gray slowdowns, engine wedges, and armed migration failures scheduled by fleet *tick* |
//!
//! Two properties are load-bearing:
//!
//! 1. **Determinism.** All randomness is spent at *plan generation* time
//!    ([`FaultPlan::generate`], seeded by the vendored RNG); replaying a
//!    plan is a pure function of the simulation's own cycle stream, so a
//!    faulted run is as reproducible as a clean one — byte-identical
//!    `results/*.json` at any `--jobs` level.
//! 2. **Zero effect when empty.** An empty plan ([`FaultPlan::empty`])
//!    makes every injector hook a no-op that consumes no RNG state and
//!    mutates nothing, so results are byte-identical to a run without the
//!    fault layer at all (gated in CI).
//!
//! Fault classes and where they land (see DESIGN.md "Fault model"):
//!
//! * **Data bit flips** (single / double / aliased-triple) corrupt the
//!   engine's fetched *view* of a candidate line, then pass through
//!   [`Secded72::decode`](pageforge_ecc::Secded72::decode): singles are
//!   corrected, doubles are detected (the comparison then takes a
//!   deterministic safe direction), and the crafted triple exercises the
//!   miscorrect arm.
//! * **Check-bit flips** corrupt the stored ECC code of a word.
//! * **Key faults / collisions** corrupt the snatched minikey or force a
//!   stale hash-key match — exactly the hints §3.3 says may lie.
//! * **Scan Table corruption** XORs an entry's PPN or Less/More pointers.
//! * **Stall windows** make the engine unavailable; the OS driver degrades
//!   to the software KSM path with bounded retry + exponential backoff.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fleet;
pub mod inject;
pub mod plan;

pub use fleet::{FleetFaultEvent, FleetFaultKind, FleetFaultPlan};
pub use inject::{FaultInjector, LineView, TableFault};
pub use plan::{FaultEvent, FaultKind, FaultPlan, StallWindow, PLAN_VERSION};
