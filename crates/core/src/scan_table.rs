//! The Scan Table (Figure 2(b) of the paper).
//!
//! The Scan Table is the only architectural state PageForge adds: one *PFE*
//! (PageForge Entry) describing the candidate page, and a small array of
//! *Other Pages* entries describing the pages to compare against, each with
//! `Less`/`More` indices that encode the software-chosen search order. With
//! the paper's sizing — 31 Other Pages + 1 PFE — the whole table is ≈260 B.

use pageforge_ecc::EccHashKey;
use pageforge_types::Ppn;

/// Index value meaning "no entry": walking to it terminates the search
/// ("If Ptr points to an invalid entry, PageForge completed the search
/// without finding a match", §3.2.1).
pub const INVALID_INDEX: u8 = u8::MAX;

/// Number of Other Pages entries in the paper's configuration (Table 2).
pub const DEFAULT_OTHER_PAGES: usize = 31;

/// One *Other Pages* entry: a page to compare against the candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtherPage {
    /// Valid bit.
    pub valid: bool,
    /// Physical page number of this page.
    pub ppn: Ppn,
    /// Next entry when the candidate compares *smaller* than this page.
    pub less: u8,
    /// Next entry when the candidate compares *greater* than this page.
    pub more: u8,
}

impl OtherPage {
    /// An invalid (empty) entry.
    pub fn invalid() -> Self {
        OtherPage {
            valid: false,
            ppn: Ppn(0),
            less: INVALID_INDEX,
            more: INVALID_INDEX,
        }
    }
}

/// The *PFE* entry: candidate page state and control bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfeEntry {
    /// Valid bit (V).
    pub valid: bool,
    /// Physical page number of the candidate page.
    pub ppn: Ppn,
    /// The ECC-based hash key, once generated.
    pub hash: Option<EccHashKey>,
    /// Scanned (S): the current batch has been fully processed.
    pub scanned: bool,
    /// Duplicate (D): an identical page was found; `ptr` names it.
    pub duplicate: bool,
    /// Hash Key Ready (H): `hash` is complete.
    pub hash_ready: bool,
    /// Last Refill (L): this is the final batch, so the hardware must
    /// finish the hash key before idling.
    pub last_refill: bool,
    /// Index of the Other Pages entry currently being compared (or, with D
    /// set, the entry that matched).
    pub ptr: u8,
}

impl PfeEntry {
    /// An invalid (empty) PFE.
    pub fn invalid() -> Self {
        PfeEntry {
            valid: false,
            ppn: Ppn(0),
            hash: None,
            scanned: false,
            duplicate: false,
            hash_ready: false,
            last_refill: false,
            ptr: INVALID_INDEX,
        }
    }
}

/// The snapshot returned by `get_PFE_info` (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfeInfo {
    /// The hash key, if ready.
    pub hash: Option<EccHashKey>,
    /// Current / matching entry index.
    pub ptr: u8,
    /// Scanned bit.
    pub scanned: bool,
    /// Duplicate bit.
    pub duplicate: bool,
    /// Hash Key Ready bit.
    pub hash_ready: bool,
}

/// The Scan Table: one PFE plus `N` Other Pages entries.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanTable {
    pfe: PfeEntry,
    others: Vec<OtherPage>,
}

impl ScanTable {
    /// Creates a table with `entries` Other Pages slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or ≥ 255 (index 255 is the invalid
    /// sentinel).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries < INVALID_INDEX as usize,
            "entry count must be in 1..255"
        );
        ScanTable {
            pfe: PfeEntry::invalid(),
            others: vec![OtherPage::invalid(); entries],
        }
    }

    /// Number of Other Pages slots.
    pub fn capacity(&self) -> usize {
        self.others.len()
    }

    /// Storage footprint in bytes, for the Table 5 area accounting: each
    /// Other Pages entry packs V + PPN (52 bits) + two 5-bit-rounded-to-8
    /// indices, and the PFE adds the hash key and control bits.
    pub fn size_bytes(&self) -> usize {
        // 8 B PPN + 2 index bytes + flags, conservatively 8 B per entry
        // plus a 12 B PFE (PPN + 4 B hash + flags + ptr).
        self.others.len() * 8 + 12
    }

    /// `insert_PPN` (Table 1): fills an Other Pages entry.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn insert_ppn(&mut self, index: u8, ppn: Ppn, less: u8, more: u8) {
        let slot = self
            .others
            .get_mut(index as usize)
            .unwrap_or_else(|| panic!("insert_ppn: index {index} out of range"));
        *slot = OtherPage {
            valid: true,
            ppn,
            less,
            more,
        };
    }

    /// `insert_PFE` (Table 1): fills the PFE entry and clears status bits.
    pub fn insert_pfe(&mut self, ppn: Ppn, last_refill: bool, ptr: u8) {
        self.pfe = PfeEntry {
            valid: true,
            ppn,
            hash: None,
            scanned: false,
            duplicate: false,
            hash_ready: false,
            last_refill,
            ptr,
        };
    }

    /// `update_PFE` (Table 1): rearms the table for another batch without
    /// resetting the candidate or the partially-built hash key.
    ///
    /// # Panics
    ///
    /// Panics if no candidate was inserted (`insert_PFE` first).
    pub fn update_pfe(&mut self, last_refill: bool, ptr: u8) {
        assert!(self.pfe.valid, "update_pfe before insert_pfe");
        self.pfe.last_refill = last_refill;
        self.pfe.ptr = ptr;
        self.pfe.scanned = false;
        self.pfe.duplicate = false;
    }

    /// `get_PFE_info` (Table 1): status snapshot for the OS.
    pub fn pfe_info(&self) -> PfeInfo {
        PfeInfo {
            hash: if self.pfe.hash_ready {
                self.pfe.hash
            } else {
                None
            },
            ptr: self.pfe.ptr,
            scanned: self.pfe.scanned,
            duplicate: self.pfe.duplicate,
            hash_ready: self.pfe.hash_ready,
        }
    }

    /// Invalidates every Other Pages entry (a refill starts fresh).
    pub fn clear_others(&mut self) {
        for o in &mut self.others {
            *o = OtherPage::invalid();
        }
    }

    /// The PFE entry (hardware-side access).
    pub fn pfe(&self) -> &PfeEntry {
        &self.pfe
    }

    /// Mutable PFE (hardware-side access).
    pub(crate) fn pfe_mut(&mut self) -> &mut PfeEntry {
        &mut self.pfe
    }

    /// The Other Pages entry at `index`, if it is in range and valid.
    pub fn other(&self, index: u8) -> Option<&OtherPage> {
        self.others.get(index as usize).filter(|o| o.valid)
    }

    /// Fault hook: XORs the stored fields of the Other Pages entry at
    /// `index`, modeling a soft error in the table SRAM. No-op when the
    /// slot is out of range or invalid (an SRAM flip in an invalid entry
    /// is architecturally silent). Only the fault-injection layer calls
    /// this; the Table 1 OS interface cannot reach it.
    pub fn corrupt_other(&mut self, index: u8, ppn_xor: u64, less_xor: u8, more_xor: u8) {
        if let Some(slot) = self.others.get_mut(index as usize).filter(|o| o.valid) {
            slot.ppn = Ppn(slot.ppn.0 ^ ppn_xor);
            slot.less ^= less_xor;
            slot.more ^= more_xor;
        }
    }
}

impl Default for ScanTable {
    /// The paper's sizing: 31 Other Pages + 1 PFE.
    fn default() -> Self {
        Self::new(DEFAULT_OTHER_PAGES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sizing() {
        let t = ScanTable::default();
        assert_eq!(t.capacity(), 31);
        // "Scan table size ≈ 260B" (Table 2).
        assert!((250..=270).contains(&t.size_bytes()), "{}", t.size_bytes());
    }

    #[test]
    fn insert_ppn_fills_entry() {
        let mut t = ScanTable::new(4);
        t.insert_ppn(2, Ppn(99), 0, INVALID_INDEX);
        let o = t.other(2).unwrap();
        assert_eq!(o.ppn, Ppn(99));
        assert_eq!(o.less, 0);
        assert_eq!(o.more, INVALID_INDEX);
        assert!(t.other(1).is_none(), "unfilled entries are invalid");
    }

    #[test]
    fn insert_pfe_resets_status() {
        let mut t = ScanTable::new(4);
        t.insert_pfe(Ppn(1), false, 0);
        assert!(t.pfe().valid);
        assert!(!t.pfe_info().scanned);
        assert_eq!(t.pfe_info().ptr, 0);
        assert_eq!(t.pfe_info().hash, None);
    }

    #[test]
    fn update_pfe_preserves_candidate() {
        let mut t = ScanTable::new(4);
        t.insert_pfe(Ppn(7), false, 0);
        t.pfe_mut().scanned = true;
        t.update_pfe(true, 1);
        assert_eq!(t.pfe().ppn, Ppn(7));
        assert!(t.pfe().last_refill);
        assert!(!t.pfe().scanned);
        assert_eq!(t.pfe().ptr, 1);
    }

    #[test]
    #[should_panic(expected = "update_pfe before insert_pfe")]
    fn update_before_insert_panics() {
        let mut t = ScanTable::new(4);
        t.update_pfe(false, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_ppn_out_of_range_panics() {
        let mut t = ScanTable::new(4);
        t.insert_ppn(4, Ppn(0), 0, 0);
    }

    #[test]
    fn clear_others_invalidates() {
        let mut t = ScanTable::new(4);
        t.insert_ppn(0, Ppn(5), INVALID_INDEX, INVALID_INDEX);
        t.clear_others();
        assert!(t.other(0).is_none());
    }

    #[test]
    fn hash_hidden_until_ready() {
        let mut t = ScanTable::new(2);
        t.insert_pfe(Ppn(1), false, 0);
        t.pfe_mut().hash = Some(pageforge_ecc::EccHashKey(0xABCD));
        assert_eq!(t.pfe_info().hash, None, "H bit not set yet");
        t.pfe_mut().hash_ready = true;
        assert!(t.pfe_info().hash.is_some());
    }

    #[test]
    #[should_panic(expected = "entry count")]
    fn zero_capacity_panics() {
        let _ = ScanTable::new(0);
    }

    #[test]
    fn corrupt_other_xors_valid_entries_only() {
        let mut t = ScanTable::new(4);
        t.insert_ppn(1, Ppn(0b1000), 2, 3);
        t.corrupt_other(1, 0b0010, 1, 0);
        let o = t.other(1).unwrap();
        assert_eq!(o.ppn, Ppn(0b1010));
        assert_eq!(o.less, 3);
        assert_eq!(o.more, 3);
        // Invalid slot and out-of-range index: silently ignored.
        t.corrupt_other(0, u64::MAX, 0xFF, 0xFF);
        assert!(t.other(0).is_none());
        t.corrupt_other(200, 1, 1, 1);
    }
}
