//! The lint rules. Each module owns one or two rule ids; see ANALYSIS.md
//! for the rationale behind every rule and the allowlist policy.

pub mod determinism;
pub mod hygiene;
pub mod panics;
pub mod registry;
