//! The full chip cache hierarchy with snoopy MESI coherence.
//!
//! Topology (Figure 5 / Table 2): per-core private L1 and L2, one shared
//! (logically sliced) L3, a wide snoopy bus, and the memory controllers
//! behind it. The L3 is inclusive of the private levels, so an L3 eviction
//! back-invalidates L1/L2 copies.

use pageforge_types::{Cycle, LineAddr};

use crate::cache::{CacheConfig, CacheStats, LineState, SetAssocCache};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Own L1.
    L1,
    /// Own L2.
    L2,
    /// Another core's private cache (snoop intervention).
    Peer,
    /// The shared L3.
    L3,
    /// Nowhere on chip: the line comes from DRAM (the caller charges memory
    /// latency on top of [`Access::latency`]).
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Where the line was found.
    pub level: HitLevel,
    /// On-chip latency in cycles (excluding DRAM time for
    /// [`HitLevel::Memory`]).
    pub latency: Cycle,
}

/// Geometry and timing of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (private L1/L2 pairs).
    pub cores: usize,
    /// Per-core L1 geometry.
    pub l1: CacheConfig,
    /// Per-core L2 geometry.
    pub l2: CacheConfig,
    /// Shared L3 geometry.
    pub l3: CacheConfig,
    /// Extra cycles for a snoop intervention from a peer cache.
    pub peer_transfer_latency: Cycle,
    /// Bus transit latency added to every off-core hop.
    pub bus_latency: Cycle,
}

impl HierarchyConfig {
    /// The paper's configuration (Table 2) with `cores` cores.
    pub fn micro50(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig::l1_micro50(),
            l2: CacheConfig::l2_micro50(),
            l3: CacheConfig::l3_micro50(),
            peer_transfer_latency: 12,
            bus_latency: 4,
        }
    }
}

/// The chip's caches: `cores` private L1/L2 pairs and a shared L3.
#[derive(Debug, Clone)]
pub struct SystemCaches {
    cfg: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    /// Conservative per-line holder filter: bit `c` is set whenever core
    /// `c`'s private caches *may* hold the line (always set on fill, only
    /// cleared when a scan proves absence). Bus snoops consult it to skip
    /// scanning cores that provably cannot hold the line — the common case
    /// for a VM's private pages, which only its own core ever touches.
    /// Purely an optimization: every hit/miss/state outcome is identical
    /// with or without the filter.
    holders: Vec<u64>,
    /// First-touch undo log for `holders`, paired with the per-cache way
    /// journals (see [`SystemCaches::journal_begin`]).
    holder_journal: Option<Box<HolderJournal>>,
}

/// First-touch undo log for the holder filter words (same discipline as
/// the per-cache `WayJournal`): each word's pre-segment value is saved
/// on its first write this segment; rollback restores the words and
/// truncates entries created by in-segment growth.
#[derive(Debug, Clone)]
struct HolderJournal {
    gen: u32,
    stamp: Vec<u32>,
    saved: Vec<(u32, u64)>,
    /// `holders.len()` at segment start; growth past it is undone by
    /// truncation.
    len_at: usize,
}

impl SystemCaches {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero or exceeds the 64-bit holder filter.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores > 0, "at least one core required");
        assert!(cfg.cores <= 64, "holder filter packs cores into a u64");
        SystemCaches {
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            l3: SetAssocCache::new(cfg.l3),
            cfg,
            holders: Vec::new(),
            holder_journal: None,
        }
    }

    /// Allocates the speculation undo logs on every cache and the holder
    /// filter. Recording starts at the first
    /// [`journal_begin`](Self::journal_begin); a no-op if already enabled.
    pub fn journal_enable(&mut self) {
        for c in &mut self.l1 {
            c.journal_enable();
        }
        for c in &mut self.l2 {
            c.journal_enable();
        }
        self.l3.journal_enable();
        if self.holder_journal.is_none() {
            self.holder_journal = Some(Box::new(HolderJournal {
                gen: 0,
                stamp: vec![0; self.holders.len()],
                saved: Vec::new(),
                len_at: self.holders.len(),
            }));
        }
    }

    /// Starts a new journal segment across the whole hierarchy: the
    /// current state becomes the rollback baseline.
    pub fn journal_begin(&mut self) {
        for c in &mut self.l1 {
            c.journal_begin();
        }
        for c in &mut self.l2 {
            c.journal_begin();
        }
        self.l3.journal_begin();
        if let Some(j) = self.holder_journal.as_deref_mut() {
            if j.gen == u32::MAX {
                j.stamp.fill(0);
                j.gen = 0;
            }
            j.gen += 1;
            j.saved.clear();
            j.len_at = self.holders.len();
        }
    }

    /// Restores the whole hierarchy to the state at the last
    /// [`journal_begin`](Self::journal_begin) and opens a fresh segment
    /// from that baseline.
    pub fn journal_rollback(&mut self) {
        for c in &mut self.l1 {
            c.journal_rollback();
        }
        for c in &mut self.l2 {
            c.journal_rollback();
        }
        self.l3.journal_rollback();
        if let Some(j) = self.holder_journal.as_deref_mut() {
            for &(idx, word) in &j.saved {
                // Words first touched beyond the segment-start length were
                // created by in-segment growth; truncation below undoes them.
                if (idx as usize) < j.len_at {
                    self.holders[idx as usize] = word;
                }
            }
            self.holders.truncate(j.len_at);
            j.saved.clear();
            if j.gen == u32::MAX {
                j.stamp.fill(0);
                j.gen = 0;
            }
            j.gen += 1;
        }
    }

    /// Saves `holders[idx]` before its first write this segment. The
    /// caller guarantees `idx < holders.len()`.
    #[inline]
    fn save_holder(&mut self, idx: usize) {
        if let Some(j) = self.holder_journal.as_deref_mut() {
            if j.gen == 0 {
                return;
            }
            if idx >= j.stamp.len() {
                j.stamp.resize(idx + 1, 0);
            }
            if j.stamp[idx] != j.gen {
                j.stamp[idx] = j.gen;
                j.saved.push((idx as u32, self.holders[idx]));
            }
        }
    }

    /// The may-hold mask of `addr` (0 when never filled).
    fn holder_mask(&self, addr: LineAddr) -> u64 {
        self.holders.get(addr.0 as usize).copied().unwrap_or(0)
    }

    /// Marks `core` as a possible private holder of `addr`.
    fn note_holder(&mut self, core: usize, addr: LineAddr) {
        let idx = addr.0 as usize;
        if idx >= self.holders.len() {
            self.holders.resize(idx + 1, 0);
        }
        self.save_holder(idx);
        self.holders[idx] |= 1 << core;
    }

    /// Clears the may-hold bits in `mask` for `addr` (after a scan or
    /// invalidation proved those cores no longer hold the line).
    fn clear_holders(&mut self, addr: LineAddr, mask: u64) {
        let idx = addr.0 as usize;
        if idx < self.holders.len() {
            self.save_holder(idx);
            self.holders[idx] &= !mask;
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// One load (`write = false`) or store (`write = true`) by `core`.
    ///
    /// Walks L1 → L2 → snoop peers → L3; allocates the line on the way back
    /// up. For stores, peer copies are invalidated and the line installs
    /// Modified.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: LineAddr, write: bool) -> Access {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let mut latency = self.cfg.l1.latency;

        // L1.
        if let Some(state) = self.l1[core].lookup(addr) {
            if write && state == LineState::Shared {
                // Upgrade: invalidate peers, go Modified.
                latency += self.cfg.bus_latency;
                self.invalidate_peers(core, addr);
                self.l1[core].set_state(addr, LineState::Modified);
                self.l2[core].set_state(addr, LineState::Modified);
            } else if write {
                self.l1[core].set_state(addr, LineState::Modified);
            }
            return Access {
                level: HitLevel::L1,
                latency,
            };
        }

        // L2.
        latency += self.cfg.l2.latency;
        if let Some(state) = self.l2[core].lookup(addr) {
            let new_state = if write {
                if state == LineState::Shared {
                    latency += self.cfg.bus_latency;
                    self.invalidate_peers(core, addr);
                }
                LineState::Modified
            } else {
                state
            };
            self.l2[core].set_state(addr, new_state);
            self.fill_private(core, addr, new_state, 1); // fill L1 only
            return Access {
                level: HitLevel::L2,
                latency,
            };
        }

        // Off-core: bus + snoop + L3.
        latency += self.cfg.bus_latency + self.cfg.l3.latency;
        let peer_had_it = self.snoop(core, addr, write);
        if peer_had_it {
            latency += self.cfg.peer_transfer_latency;
        }

        let l3_state = self.l3.lookup(addr);
        let level = if peer_had_it {
            HitLevel::Peer
        } else if l3_state.is_some() {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };

        // Install in L3 (inclusive), then the private levels.
        let install = if write {
            LineState::Modified
        } else if peer_had_it || self.any_peer_holds(core, addr) {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        if l3_state.is_none() {
            if let Some((victim, vstate)) = self.l3.fill(addr, LineState::Shared) {
                // Inclusive L3: back-invalidate private copies of the victim.
                self.back_invalidate(victim);
                let _ = vstate; // writeback already counted by the L3 stats
            }
        }
        self.fill_private(core, addr, install, 2);
        Access { level, latency }
    }

    /// The PageForge probe (§3.2.2): "the control logic issues each request
    /// to the on-chip network first. If the request is serviced from the
    /// network, no other action is taken."
    ///
    /// Returns the on-chip latency when some cache holds the line; `None`
    /// when the request must fall through to DRAM. Peer Modified lines are
    /// downgraded to Shared (the snoop supplies the data) but nothing is
    /// allocated anywhere — the PageForge module has no cache.
    pub fn probe_from_mc(&mut self, addr: LineAddr) -> Option<Cycle> {
        let mut latency = self.cfg.bus_latency;
        // Snoopy bus: every private cache that may hold the line is
        // checked (the holder filter excludes only provable absences).
        let mask = self.holder_mask(addr);
        let mut found = false;
        let mut still_held = 0u64;
        for core in 0..self.cfg.cores {
            if mask & (1 << core) == 0 {
                continue;
            }
            if let Some(state) = self.l1[core].peek(addr) {
                if state == LineState::Modified {
                    self.l1[core].set_state(addr, LineState::Shared);
                    self.l2[core].set_state(addr, LineState::Shared);
                }
                found = true;
                still_held |= 1 << core;
            } else if let Some(state) = self.l2[core].peek(addr) {
                if state == LineState::Modified {
                    self.l2[core].set_state(addr, LineState::Shared);
                }
                found = true;
                still_held |= 1 << core;
            }
        }
        self.clear_holders(addr, mask & !still_held);
        if found {
            latency += self.cfg.peer_transfer_latency;
            return Some(latency);
        }
        // L3 peek: a probe hit is serviced from the L3 without LRU update
        // (the MC-side read does not re-rank working sets).
        if self.l3.peek(addr).is_some() {
            return Some(latency + self.cfg.l3.latency);
        }
        None
    }

    fn fill_private(&mut self, core: usize, addr: LineAddr, state: LineState, levels: u8) {
        self.note_holder(core, addr);
        if levels >= 2 {
            if let Some((victim, vstate)) = self.l2[core].fill(addr, state) {
                if vstate.is_dirty() {
                    self.l3.set_state(victim, LineState::Modified);
                }
                self.l1[core].invalidate(victim); // L2 inclusive of L1
            }
        }
        if let Some((victim, vstate)) = self.l1[core].fill(addr, state) {
            if vstate.is_dirty() {
                self.l2[core].set_state(victim, LineState::Modified);
            }
        }
    }

    /// Snoops peer caches; on a write, invalidates their copies. Returns
    /// whether any peer held the line. Only cores whose holder bit is set
    /// are scanned — the filter guarantees the rest cannot hold the line.
    fn snoop(&mut self, requester: usize, addr: LineAddr, write: bool) -> bool {
        let peer_mask = self.holder_mask(addr) & !(1u64 << requester);
        if peer_mask == 0 {
            return false;
        }
        let mut found = false;
        let mut still_held = 0u64;
        for core in 0..self.cfg.cores {
            if peer_mask & (1 << core) == 0 {
                continue;
            }
            let in_l1 = self.l1[core].peek(addr).is_some();
            let in_l2 = self.l2[core].peek(addr).is_some();
            if in_l1 || in_l2 {
                found = true;
                if write {
                    self.l1[core].invalidate(addr);
                    self.l2[core].invalidate(addr);
                } else {
                    // Downgrade M/E to S; dirty data is reflected to L3.
                    if self.l1[core].peek(addr).is_some_and(LineState::is_dirty)
                        || self.l2[core].peek(addr).is_some_and(LineState::is_dirty)
                    {
                        self.l3.set_state(addr, LineState::Modified);
                    }
                    self.l1[core].set_state(addr, LineState::Shared);
                    self.l2[core].set_state(addr, LineState::Shared);
                    still_held |= 1 << core;
                }
            }
        }
        self.clear_holders(addr, peer_mask & !still_held);
        found
    }

    fn any_peer_holds(&self, requester: usize, addr: LineAddr) -> bool {
        let peer_mask = self.holder_mask(addr) & !(1u64 << requester);
        if peer_mask == 0 {
            return false;
        }
        (0..self.cfg.cores).any(|core| {
            peer_mask & (1 << core) != 0
                && (self.l1[core].peek(addr).is_some() || self.l2[core].peek(addr).is_some())
        })
    }

    fn invalidate_peers(&mut self, requester: usize, addr: LineAddr) {
        let peer_mask = self.holder_mask(addr) & !(1u64 << requester);
        if peer_mask == 0 {
            return;
        }
        for core in 0..self.cfg.cores {
            if peer_mask & (1 << core) != 0 {
                self.l1[core].invalidate(addr);
                self.l2[core].invalidate(addr);
            }
        }
        self.clear_holders(addr, peer_mask);
    }

    fn back_invalidate(&mut self, addr: LineAddr) {
        let mask = self.holder_mask(addr);
        if mask == 0 {
            return;
        }
        for core in 0..self.cfg.cores {
            if mask & (1 << core) != 0 {
                self.l1[core].invalidate(addr);
                self.l2[core].invalidate(addr);
            }
        }
        self.clear_holders(addr, mask);
    }

    /// Stats of one core's L1.
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        self.l1[core].stats()
    }

    /// Stats of one core's L2.
    pub fn l2_stats(&self, core: usize) -> &CacheStats {
        self.l2[core].stats()
    }

    /// Stats of the shared L3 (Table 4 reports its miss rate).
    pub fn l3_stats(&self) -> &CacheStats {
        self.l3.stats()
    }

    /// The MESI state a core's private caches hold for `addr` (the more
    /// privileged of its L1/L2 states), for tests and validation.
    pub fn private_state(&self, core: usize, addr: LineAddr) -> Option<LineState> {
        let l1 = self.l1[core].peek(addr);
        let l2 = self.l2[core].peek(addr);
        match (l1, l2) {
            (Some(a), Some(b)) => Some(if a == LineState::Modified || b == LineState::Modified {
                LineState::Modified
            } else if a == LineState::Exclusive || b == LineState::Exclusive {
                LineState::Exclusive
            } else {
                LineState::Shared
            }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Verifies the single-writer MESI invariant for `addr`: at most one
    /// core may hold the line Modified or Exclusive, and if one does, no
    /// other core holds it at all.
    pub fn check_coherence(&self, addr: LineAddr) -> Result<(), String> {
        let holders: Vec<(usize, LineState)> = (0..self.cfg.cores)
            .filter_map(|c| self.private_state(c, addr).map(|s| (c, s)))
            .collect();
        let owners: Vec<&(usize, LineState)> = holders
            .iter()
            .filter(|(_, s)| matches!(s, LineState::Modified | LineState::Exclusive))
            .collect();
        if owners.len() > 1 {
            return Err(format!("{addr}: multiple owners {owners:?}"));
        }
        if owners.len() == 1 && holders.len() > 1 {
            return Err(format!("{addr}: owner coexists with sharers {holders:?}"));
        }
        Ok(())
    }

    /// Clears all statistics (post-warm-up).
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.l3.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pageforge_types::LINE_SIZE;

    /// A small hierarchy so eviction paths are exercised quickly.
    fn small(cores: usize) -> SystemCaches {
        SystemCaches::new(HierarchyConfig {
            cores,
            l1: CacheConfig {
                size_bytes: 4 * LINE_SIZE,
                ways: 2,
                latency: 2,
                mshrs: 4,
            },
            l2: CacheConfig {
                size_bytes: 16 * LINE_SIZE,
                ways: 4,
                latency: 6,
                mshrs: 4,
            },
            l3: CacheConfig {
                size_bytes: 64 * LINE_SIZE,
                ways: 4,
                latency: 20,
                mshrs: 8,
            },
            peer_transfer_latency: 12,
            bus_latency: 4,
        })
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut s = small(2);
        let a = s.access(0, LineAddr(5), false);
        assert_eq!(a.level, HitLevel::Memory);
        let b = s.access(0, LineAddr(5), false);
        assert_eq!(b.level, HitLevel::L1);
        assert!(b.latency < a.latency);
    }

    #[test]
    fn peer_hit_is_detected() {
        let mut s = small(2);
        s.access(0, LineAddr(5), false);
        let a = s.access(1, LineAddr(5), false);
        assert_eq!(a.level, HitLevel::Peer);
    }

    #[test]
    fn write_invalidates_peer_copies() {
        let mut s = small(2);
        s.access(0, LineAddr(5), false);
        s.access(1, LineAddr(5), true); // core 1 writes
                                        // Core 0's next access misses its L1 (copy invalidated).
        let a = s.access(0, LineAddr(5), false);
        assert_ne!(a.level, HitLevel::L1);
    }

    #[test]
    fn read_after_peer_write_sees_peer() {
        let mut s = small(2);
        s.access(0, LineAddr(9), true); // core 0 has it Modified
        let a = s.access(1, LineAddr(9), false);
        assert_eq!(a.level, HitLevel::Peer);
        // Now both are Shared; a store by core 1 upgrades.
        let b = s.access(1, LineAddr(9), true);
        assert!(matches!(b.level, HitLevel::L1 | HitLevel::L2));
    }

    #[test]
    fn l3_hit_after_private_eviction() {
        let mut s = small(1);
        // Touch enough distinct lines mapping to the same L1/L2 sets that
        // the line is evicted from private caches but still in L3.
        s.access(0, LineAddr(0), false);
        for i in 1..=16 {
            s.access(0, LineAddr(i * 4), false); // L2 has 4 sets
        }
        let a = s.access(0, LineAddr(0), false);
        assert!(
            matches!(a.level, HitLevel::L3 | HitLevel::Memory),
            "got {:?}",
            a.level
        );
    }

    #[test]
    fn probe_finds_cached_line_without_allocating() {
        let mut s = small(2);
        s.access(0, LineAddr(7), false);
        let probe = s.probe_from_mc(LineAddr(7));
        assert!(probe.is_some());
        // A line nobody has:
        assert_eq!(s.probe_from_mc(LineAddr(1000)), None);
    }

    #[test]
    fn probe_downgrades_modified_lines() {
        let mut s = small(2);
        s.access(0, LineAddr(7), true); // Modified in core 0
        s.probe_from_mc(LineAddr(7));
        // Core 0 still hits L1 (line not stolen, just downgraded).
        let a = s.access(0, LineAddr(7), false);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn probe_does_not_pollute() {
        let mut s = small(1);
        for i in 0..1000 {
            s.probe_from_mc(LineAddr(i));
        }
        // Nothing was allocated anywhere.
        assert_eq!(s.l1_stats(0).accesses(), 0);
        let a = s.access(0, LineAddr(1), false);
        assert_eq!(a.level, HitLevel::Memory);
    }

    #[test]
    fn l3_miss_rate_reflects_pollution() {
        let mut s = small(1);
        // A working set that fits L3: high hit rate on re-access.
        for i in 0..32 {
            s.access(0, LineAddr(i), false);
        }
        s.reset_stats();
        for _ in 0..4 {
            for i in 0..32 {
                s.access(0, LineAddr(i), false);
            }
        }
        let quiet = s.l3_stats().miss_rate();
        // Now stream a huge polluting scan through the same cache.
        for i in 100..1000 {
            s.access(0, LineAddr(i), false);
        }
        s.reset_stats();
        for _ in 0..4 {
            for i in 0..32 {
                s.access(0, LineAddr(i), false);
                s.access(0, LineAddr(500 + i * 7), false); // ongoing pollution
            }
        }
        let polluted = s.l3_stats().miss_rate();
        assert!(
            polluted > quiet,
            "pollution should raise L3 miss rate: {quiet} -> {polluted}"
        );
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        let mut s = small(1);
        // Fill far beyond L3 capacity (64 lines, 16 sets × 4 ways).
        for i in 0..256 {
            s.access(0, LineAddr(i), false);
        }
        // Early lines must be gone from L1 as well (back-invalidated or
        // evicted): accessing line 0 is a full miss.
        let a = s.access(0, LineAddr(0), false);
        assert_eq!(a.level, HitLevel::Memory);
    }

    #[test]
    fn journal_rollback_restores_the_whole_hierarchy() {
        // Journalled hierarchy vs untouched reference: identical prefix,
        // speculative divergence, rollback — then an identical suffix
        // must produce identical levels, latencies, and stats.
        let mut s = small(2);
        let mut reference = small(2);
        s.journal_enable();
        let prefix = [(0usize, 5u64, false), (1, 5, true), (0, 9, false)];
        for &(core, a, w) in &prefix {
            assert_eq!(
                s.access(core, LineAddr(a), w),
                reference.access(core, LineAddr(a), w)
            );
        }
        s.journal_begin();

        // Divergent speculation: fills, upgrades, snoops, probes, growth
        // of the holder filter past its segment-start length.
        for i in 0..200u64 {
            s.access((i % 2) as usize, LineAddr(i * 3), i % 5 == 0);
        }
        s.probe_from_mc(LineAddr(5));
        s.journal_rollback();

        // The canonical suffix must be indistinguishable from a run that
        // never speculated.
        for &(core, a, w) in &[(1usize, 5u64, false), (0, 13, true), (1, 9, false)] {
            assert_eq!(
                s.access(core, LineAddr(a), w),
                reference.access(core, LineAddr(a), w),
                "replay diverged at ({core}, {a}, {w})"
            );
        }
        for core in 0..2 {
            assert_eq!(*s.l1_stats(core), *reference.l1_stats(core));
            assert_eq!(*s.l2_stats(core), *reference.l2_stats(core));
        }
        assert_eq!(*s.l3_stats(), *reference.l3_stats());
        s.check_coherence(LineAddr(5)).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut s = small(1);
        s.access(1, LineAddr(0), false);
    }

    #[test]
    fn paper_config_constructs() {
        let s = SystemCaches::new(HierarchyConfig::micro50(10));
        assert_eq!(s.config().cores, 10);
    }
}
