//! Property-style tests for the analyzer's lexer, driven by the
//! vendored deterministic RNG (fixed seeds, so a failure is always
//! reproducible by re-running the test). Each test generates hundreds
//! of random sources around one lexer obligation — nested block
//! comments, raw strings with hash delimiters, the char/lifetime
//! ambiguity, `#[cfg(test)]` stripping — and checks the token stream
//! against the sequence the generator *meant* to write. The rules can
//! only be as trustworthy as the lexer: a comment or string leaking
//! into the token stream would turn prose into findings, and a
//! mis-stripped test module would flag `#[should_panic]` scaffolding.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pageforge_analyzer::lexer::{lex, strip_tests, Tok, TokKind};

/// Words that must never surface from comment/string/test positions —
/// each would trip a real rule if it leaked into code position.
const POISON: &[&str] = &["HashMap", "unwrap", "Instant", "panic"];

/// Words the generator emits as genuine code tokens.
const KEEP: &[&str] = &["scan", "merge_pages", "BTreeMap", "frame", "digest"];

fn pick<'a>(rng: &mut SmallRng, xs: &'a [&'a str]) -> &'a str {
    xs[rng.gen_range(0usize..xs.len())]
}

/// Source builder that tracks the 1-based line each emitted token
/// starts on, so tests can assert exact line numbers, not just order.
struct Src {
    text: String,
    line: u32,
}

impl Src {
    fn new() -> Self {
        Src {
            text: String::new(),
            line: 1,
        }
    }

    fn push(&mut self, s: &str) {
        self.line += s.chars().filter(|&c| c == '\n').count() as u32;
        self.text.push_str(s);
    }

    /// Random inter-token whitespace, sometimes spanning lines.
    fn sep(&mut self, rng: &mut SmallRng) {
        let s = ["", " ", "  ", "\n", " \n\t ", "\n\n"][rng.gen_range(0usize..6)];
        self.push(s);
        self.push(" "); // never let two tokens touch
    }

    /// A block comment of the given nesting depth, stuffed with poison
    /// words and newlines. Inner text avoids `*` and `/` so the only
    /// delimiters are the ones this function writes.
    fn comment(&mut self, rng: &mut SmallRng, depth: usize) {
        self.push("/*");
        for _ in 0..rng.gen_range(1usize..4) {
            self.push(" ");
            self.push(pick(rng, POISON));
            if rng.gen_range(0u32..3) == 0 {
                self.push("\n");
            }
        }
        if depth > 1 {
            self.comment(rng, depth - 1);
        }
        self.push(" * * ");
        self.push("*/");
    }
}

fn kinds_and_texts(toks: &[Tok]) -> Vec<(TokKind, String)> {
    toks.iter().map(|t| (t.kind, t.text.clone())).collect()
}

/// Comments — line, doc, and block comments nested to random depth —
/// contribute nothing to the token stream, and every surviving token
/// keeps the exact line its first character sits on even when the
/// comments span lines.
#[test]
fn nested_block_comments_are_invisible_and_lines_survive() {
    let mut rng = SmallRng::seed_from_u64(0x1e_5eed_0001);
    for _ in 0..200 {
        let mut src = Src::new();
        let mut expected: Vec<(TokKind, String, u32)> = Vec::new();
        for _ in 0..rng.gen_range(1usize..12) {
            match rng.gen_range(0u32..5) {
                0 => {
                    let depth = rng.gen_range(1usize..5);
                    src.comment(&mut rng, depth);
                }
                1 => {
                    src.push("// line ");
                    src.push(pick(&mut rng, POISON));
                    src.push("\n");
                }
                2 => {
                    src.push("/// doc ");
                    src.push(pick(&mut rng, POISON));
                    src.push("\n");
                }
                3 => {
                    let w = pick(&mut rng, KEEP);
                    expected.push((TokKind::Ident, w.to_owned(), src.line));
                    src.push(w);
                }
                _ => {
                    expected.push((TokKind::Punct, ";".to_owned(), src.line));
                    src.push(";");
                }
            }
            src.sep(&mut rng);
        }
        let got = lex(&src.text);
        let want: Vec<(TokKind, String)> =
            expected.iter().map(|(k, t, _)| (*k, t.clone())).collect();
        assert_eq!(kinds_and_texts(&got), want, "source:\n{}", src.text);
        for (tok, (_, _, line)) in got.iter().zip(&expected) {
            assert_eq!(tok.line, *line, "line of {:?} in:\n{}", tok.text, src.text);
        }
    }
}

/// A raw string lexes to exactly its contents — quotes, hashes, and
/// newlines included — provided the delimiter uses more hashes than
/// any run following a quote inside the contents (the same rule real
/// Rust imposes). Neighbouring identifiers are unaffected.
#[test]
fn raw_strings_with_hashes_lex_to_their_exact_contents() {
    let mut rng = SmallRng::seed_from_u64(0x1e_5eed_0002);
    for _ in 0..200 {
        let mut content = String::new();
        for _ in 0..rng.gen_range(0usize..12) {
            content.push_str(["a", "\"", "#", "\n", "x#", "\"#", " "][rng.gen_range(0usize..7)]);
        }
        // Smallest delimiter that cannot terminate early: one more hash
        // than the longest `#` run that follows a `"` in the contents.
        let mut hashes = 1usize;
        let bytes: Vec<char> = content.chars().collect();
        for (i, &c) in bytes.iter().enumerate() {
            if c == '"' {
                let run = bytes[i + 1..].iter().take_while(|&&c| c == '#').count();
                hashes = hashes.max(run + 1);
            }
        }
        let delim = "#".repeat(hashes);
        let prefix = if rng.gen_range(0u32..2) == 0 {
            "br"
        } else {
            "r"
        };
        let src = format!("before {prefix}{delim}\"{content}\"{delim} after");
        let got = lex(&src);
        let want = vec![
            (TokKind::Ident, "before".to_owned()),
            (TokKind::Str, content.clone()),
            (TokKind::Ident, "after".to_owned()),
        ];
        assert_eq!(kinds_and_texts(&got), want, "source:\n{src}");
    }
}

/// `'x'` is a char, `'x` is a lifetime — in any order, at any
/// position, including escaped chars and multi-char lifetime names.
#[test]
fn char_literals_and_lifetimes_disambiguate() {
    let mut rng = SmallRng::seed_from_u64(0x1e_5eed_0003);
    let letters = ["a", "b", "q", "z"];
    let lifetimes = ["a", "de", "static", "tick"];
    for _ in 0..200 {
        let mut src = Src::new();
        let mut want: Vec<(TokKind, String)> = Vec::new();
        for _ in 0..rng.gen_range(1usize..10) {
            match rng.gen_range(0u32..4) {
                0 => {
                    let c = pick(&mut rng, &letters);
                    src.push(&format!("'{c}'"));
                    want.push((TokKind::Char, c.to_owned()));
                }
                1 => {
                    // Escaped char literals keep kind, drop text.
                    src.push("'\\n'");
                    want.push((TokKind::Char, String::new()));
                }
                2 => {
                    let lt = pick(&mut rng, &lifetimes);
                    src.push(&format!("&'{lt}"));
                    want.push((TokKind::Punct, "&".to_owned()));
                    want.push((TokKind::Lifetime, lt.to_owned()));
                }
                _ => {
                    let lt = pick(&mut rng, &lifetimes);
                    src.push(&format!("<'{lt}>"));
                    want.push((TokKind::Punct, "<".to_owned()));
                    want.push((TokKind::Lifetime, lt.to_owned()));
                    want.push((TokKind::Punct, ">".to_owned()));
                }
            }
            src.sep(&mut rng);
        }
        let got = lex(&src.text);
        assert_eq!(kinds_and_texts(&got), want, "source:\n{}", src.text);
    }
}

/// `#[cfg(test)]` / `#[test]` items vanish wholesale — attribute, item,
/// and nested braces — while every non-test token survives, wherever
/// the test items are interleaved.
#[test]
fn cfg_test_items_are_stripped_wherever_they_sit() {
    let mut rng = SmallRng::seed_from_u64(0x1e_5eed_0004);
    for _ in 0..200 {
        let mut src = Src::new();
        let mut kept = 0usize;
        for _ in 0..rng.gen_range(1usize..10) {
            match rng.gen_range(0u32..4) {
                0 => {
                    // A real item; its body idents must survive.
                    src.push(&format!("fn real() {{ {}(); }}", pick(&mut rng, KEEP)));
                    kept += 1;
                }
                1 => {
                    // Test module with nested braces and poison words.
                    src.push(&format!(
                        "#[cfg(test)]\nmod tests {{ fn t() {{ if x {{ {}.{}(); }} }} }}",
                        pick(&mut rng, POISON),
                        pick(&mut rng, POISON),
                    ));
                }
                2 => {
                    // Stacked attributes on a test fn.
                    src.push(&format!(
                        "#[test]\n#[should_panic]\nfn boom() {{ {}!(); }}",
                        pick(&mut rng, POISON),
                    ));
                }
                _ => {
                    // Semicolon-terminated test item.
                    src.push(&format!("#[cfg(test)] use {}::x;", pick(&mut rng, POISON)));
                }
            }
            src.sep(&mut rng);
        }
        let toks = strip_tests(&lex(&src.text));
        for p in POISON {
            assert!(
                !toks.iter().any(|t| t.is_ident(p)),
                "{p} leaked from test code in:\n{}",
                src.text
            );
        }
        let real = toks.iter().filter(|t| t.is_ident("real")).count();
        assert_eq!(real, kept, "non-test items lost in:\n{}", src.text);
    }
}
