//! Throwaway profiling harness: times construction vs run for one cell.

use pageforge_bench::experiments::sim_config;
use pageforge_bench::experiments::Scale;
use pageforge_sim::{DedupMode, SimConfig, System};
use std::time::Instant;

fn main() {
    let seed = 0xC0FFEE;
    for (name, mode) in [
        ("baseline", DedupMode::None),
        ("ksm", DedupMode::Ksm(SimConfig::scaled_ksm())),
        (
            "pageforge",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
        ),
    ] {
        let cfg = sim_config("silo", mode, seed, Scale::Full);
        let t0 = Instant::now();
        let sys = System::with_shards(cfg, 1);
        let t1 = Instant::now();
        let (r, snap) = sys.run_observed();
        let t2 = Instant::now();
        println!(
            "{name}: construct {:.2}s run {:.2}s (queries {})",
            (t1 - t0).as_secs_f64(),
            (t2 - t1).as_secs_f64(),
            r.queries_completed
        );
        for m in [
            "mem.dram.reads",
            "mem.controller.reads",
            "mem.controller.coalesced_reads",
            "ksm.work.hash_ops",
            "ksm.work.comparisons",
            "engine.comparisons",
            "engine.lines_fetched",
        ] {
            if let Some(v) = snap.counter(m) {
                println!("  {m} = {v}");
            }
        }
    }
}
