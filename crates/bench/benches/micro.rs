//! Criterion micro-benchmarks backing the paper's per-operation claims:
//! page comparison cost, jhash vs ECC key generation (§3.3), red-black
//! tree search (§2.1), Scan-Table batch processing (Table 5), DRAM
//! service, and cache-hierarchy access.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pageforge_cache::{HierarchyConfig, SystemCaches};
use pageforge_core::fabric::FlatFabric;
use pageforge_core::{EngineConfig, PageForgeEngine, INVALID_INDEX};
use pageforge_ecc::{EccKeyConfig, LineEcc, Secded72};
use pageforge_ksm::rbtree::RbTree;
use pageforge_ksm::{jhash2, page_checksum};
use pageforge_mem::{Dram, DramConfig};
use pageforge_types::{Gfn, LineAddr, PageData, VmId};
use pageforge_vm::HostMemory;

fn page_with_divergence_at(byte: usize) -> (PageData, PageData) {
    let a = PageData::from_fn(|i| (i % 251) as u8);
    let mut b = a.clone();
    b.as_bytes_mut()[byte] ^= 0xFF;
    (a, b)
}

fn bench_page_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_compare");
    for &at in &[0usize, 1024, 4095] {
        let (a, b) = page_with_divergence_at(at);
        g.bench_function(format!("diverge_at_{at}"), |bench| {
            bench.iter(|| black_box(a.bytes_examined(black_box(&b))))
        });
    }
    let a = PageData::from_fn(|i| i as u8);
    let b = a.clone();
    g.bench_function("identical_full_page", |bench| {
        bench.iter(|| black_box(a.content_cmp(black_box(&b))))
    });
    g.finish();
}

fn bench_hash_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_keys");
    let page = PageData::from_fn(|i| (i * 31 % 256) as u8);
    // KSM's key: jhash2 over 1 KB.
    g.bench_function("jhash_1kb", |bench| {
        bench.iter(|| black_box(page_checksum(black_box(&page))))
    });
    // PageForge's key: ECC minikeys of 4 lines (256 B touched).
    let cfg = EccKeyConfig::default();
    g.bench_function("ecc_key_4_lines", |bench| {
        bench.iter(|| black_box(cfg.page_key(black_box(&page))))
    });
    g.bench_function("jhash2_256_words", |bench| {
        let words: Vec<u32> = (0..256).collect();
        bench.iter(|| black_box(jhash2(black_box(&words), 17)))
    });
    g.finish();
}

fn bench_ecc_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc_codec");
    g.bench_function("encode_word", |bench| {
        bench.iter(|| black_box(Secded72::encode(black_box(0xDEAD_BEEF_0123_4567))))
    });
    let code = Secded72::encode(0xDEAD_BEEF_0123_4567);
    g.bench_function("decode_clean_word", |bench| {
        bench.iter(|| black_box(Secded72::decode(black_box(0xDEAD_BEEF_0123_4567), code)))
    });
    let line = [0x5Au8; 64];
    g.bench_function("encode_line", |bench| {
        bench.iter(|| black_box(LineEcc::encode(black_box(&line))))
    });
    g.finish();
}

fn bench_rbtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rbtree");
    g.bench_function("insert_1000", |bench| {
        bench.iter_batched(
            RbTree::<u64>::new,
            |mut t| {
                for i in 0..1000u64 {
                    t.insert_ord(i.wrapping_mul(0x9E3779B97F4A7C15));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree = RbTree::new();
    for i in 0..10_000u64 {
        tree.insert_ord(i.wrapping_mul(0x9E3779B97F4A7C15));
    }
    g.bench_function("find_in_10k", |bench| {
        bench.iter(|| black_box(tree.find_ord(black_box(&(5_000u64.wrapping_mul(0x9E3779B97F4A7C15))))))
    });
    g.finish();
}

fn bench_scan_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_table");
    // One full-table batch: candidate compared against a 7-node tree.
    let mut mem = HostMemory::new();
    let pages: Vec<_> = (0..8u64)
        .map(|i| {
            mem.map_new_page(
                VmId(0),
                Gfn(i),
                PageData::from_fn(move |j| ((i * 37 + j as u64) % 251) as u8),
            )
        })
        .collect();
    g.bench_function("batch_7_entries", |bench| {
        bench.iter_batched(
            || PageForgeEngine::new(EngineConfig::default()),
            |mut eng| {
                eng.insert_pfe(pages[7], true, 0);
                for (i, &p) in pages[..7].iter().enumerate() {
                    eng.insert_ppn(i as u8, p, INVALID_INDEX, INVALID_INDEX - 1);
                }
                let mut fabric = FlatFabric::all_dram(80);
                black_box(eng.run_batch(&mem, &mut fabric, 0))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_system");
    g.bench_function("dram_service", |bench| {
        let mut dram = Dram::new(DramConfig::micro50());
        let mut t = 0u64;
        let mut addr = 0u64;
        bench.iter(|| {
            addr = addr.wrapping_add(97) % 1_000_000;
            t += 50;
            black_box(dram.service(LineAddr(addr), t, false))
        })
    });
    g.bench_function("cache_hierarchy_access", |bench| {
        let mut caches = SystemCaches::new(HierarchyConfig::micro50(4));
        let mut addr = 0u64;
        bench.iter(|| {
            addr = addr.wrapping_add(13) % 100_000;
            black_box(caches.access((addr % 4) as usize, LineAddr(addr), addr % 5 == 0))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_page_compare,
    bench_hash_keys,
    bench_ecc_codec,
    bench_rbtree,
    bench_scan_table,
    bench_memory_system
);
criterion_main!(benches);
