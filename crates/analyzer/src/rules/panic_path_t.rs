//! `PANIC-PATH-T` — the transitive panic-surface rule.
//!
//! `PANIC-PATH` keeps the hot-path *files* free of panicking
//! constructs, but a hot-path function calling `ksm::merge` which calls
//! a helper that `unwrap()`s panics just the same — the abort is merely
//! hidden two frames down. This rule closes that hole: every function
//! defined in a [`super::panics::HOT_PATHS`] file is a root, the call
//! graph is walked transitively, and every explicit panic construct
//! (`unwrap`/`expect`/panicking macros) in a reachable function is a
//! finding, annotated with the deterministic shortest call chain that
//! reaches it.
//!
//! Slice indexing is deliberately *not* transitive: indexing panics are
//! a local-reasoning discipline (the base rule enforces it where the
//! blast radius justifies it), and every `xs[i]` in every transitively
//! reachable helper would drown the audit in bounds checks the
//! surrounding code already guarantees. Explicit constructs are the
//! author saying "this cannot fail" — exactly the claims a hot-path
//! audit must collect and review.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::rules::panics::{in_hot_path, panic_constructs};
use crate::Workspace;

/// Runs `PANIC-PATH-T` over the workspace call graph.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let graph: &CallGraph = &ws.graph;
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| in_hot_path(&graph.fns[i].path))
        .collect();
    let reach = graph.reachable(&roots);

    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (&id, _) in reach.iter() {
        let f = &graph.fns[id];
        // Hot-path files are the base rule's jurisdiction; re-flagging
        // them here would double-report every allowlisted contract.
        if in_hot_path(&f.path) {
            continue;
        }
        let toks = ws.toks(&f.path);
        for (line, item) in panic_constructs(toks, f.body.0, f.body.1) {
            if !seen.insert((f.path.clone(), line, item.clone())) {
                continue;
            }
            let chain = graph.chain(&reach, id);
            out.push(Finding {
                rule: "PANIC-PATH-T",
                path: f.path.clone(),
                line,
                item: item.clone(),
                message: format!("`{item}` is reachable from the hot path: {chain}"),
                hint: "return a typed error / take the graceful-degrade branch, or \
                       allowlist with a justification proving the invariant the \
                       construct asserts; a panic anywhere on this chain aborts the \
                       whole sweep",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| {
                    (
                        (*rel).to_owned(),
                        crate::lexer::strip_tests(&crate::lexer::lex(src)),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn panic_two_calls_deep_is_found_with_its_chain() {
        let w = ws(&[
            (
                "crates/core/src/driver.rs",
                "pub fn run_sweep() { pageforge_ksm::merge_pages(); }",
            ),
            (
                "crates/ksm/src/lib.rs",
                "pub fn merge_pages() { helper(); } fn helper() { x.unwrap(); }",
            ),
        ]);
        let mut out = Vec::new();
        run(&w, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "PANIC-PATH-T");
        assert_eq!(out[0].path, "crates/ksm/src/lib.rs");
        assert_eq!(out[0].item, "unwrap");
        assert!(
            out[0]
                .message
                .contains("core::driver::run_sweep -> ksm::merge_pages -> ksm::helper"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn unreachable_panics_and_hot_files_are_not_flagged() {
        let w = ws(&[
            (
                "crates/core/src/engine.rs",
                "pub fn hot() { local.unwrap(); }",
            ),
            ("crates/ksm/src/lib.rs", "pub fn island() { x.unwrap(); }"),
        ]);
        let mut out = Vec::new();
        run(&w, &mut out);
        // engine.rs is the base rule's job; island() is unreachable.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panicking_macros_are_transitive_too() {
        let w = ws(&[
            (
                "crates/fleet/src/plane.rs",
                "pub fn tick() { pageforge_obs::record(); }",
            ),
            (
                "crates/obs/src/lib.rs",
                "pub fn record() { unreachable!(\"id from another registry\") }",
            ),
        ]);
        let mut out = Vec::new();
        run(&w, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].item, "unreachable!");
    }
}
