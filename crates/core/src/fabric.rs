//! The memory fabric the PageForge engine issues its line reads into.
//!
//! §3.2.2: "the control logic issues each request to the on-chip network
//! first. If the request is serviced from the network, no other action is
//! taken. Otherwise, it places the request in the memory controller's Read
//! Request Buffer, and the request is eventually serviced from the DRAM."
//!
//! The engine is written against this small trait so the `pageforge-core`
//! crate stays independent of the cache and DRAM crates; the full-system
//! simulator implements it over `SystemCaches` + `MemoryController`, and
//! tests use [`FlatFabric`].

use pageforge_types::{Cycle, LineAddr};

/// Completion of one line read issued by the PageForge module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricRead {
    /// Cycle at which the line data (and its ECC code) reaches the
    /// PageForge control logic.
    pub ready_at: Cycle,
    /// `true` when the line was supplied by the on-chip network (a cache);
    /// `false` when it came from DRAM.
    pub on_chip: bool,
}

/// Where PageForge's line reads get serviced from.
pub trait MemoryFabric {
    /// Issues a read of `addr` at cycle `now`.
    fn read_line(&mut self, addr: LineAddr, now: Cycle) -> FabricRead;
}

/// A test fabric with fixed latencies and a configurable on-chip hit
/// predicate.
#[derive(Debug, Clone)]
pub struct FlatFabric {
    /// Latency of an on-chip (cache) hit.
    pub chip_latency: Cycle,
    /// Latency of a DRAM access.
    pub dram_latency: Cycle,
    /// Every n-th line is an on-chip hit (0 = never).
    pub chip_hit_modulo: u64,
    /// Reads issued, for assertions.
    pub reads: u64,
}

impl FlatFabric {
    /// A fabric where everything misses to DRAM at the given latency.
    pub fn all_dram(dram_latency: Cycle) -> Self {
        FlatFabric {
            chip_latency: 24,
            dram_latency,
            chip_hit_modulo: 0,
            reads: 0,
        }
    }
}

impl MemoryFabric for FlatFabric {
    fn read_line(&mut self, addr: LineAddr, now: Cycle) -> FabricRead {
        self.reads += 1;
        let on_chip = self.chip_hit_modulo != 0 && addr.0.is_multiple_of(self.chip_hit_modulo);
        FabricRead {
            ready_at: now
                + if on_chip {
                    self.chip_latency
                } else {
                    self.dram_latency
                },
            on_chip,
        }
    }
}

impl<F: MemoryFabric + ?Sized> MemoryFabric for &mut F {
    fn read_line(&mut self, addr: LineAddr, now: Cycle) -> FabricRead {
        (**self).read_line(addr, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_fabric_latencies() {
        let mut f = FlatFabric::all_dram(80);
        let r = f.read_line(LineAddr(5), 100);
        assert_eq!(r.ready_at, 180);
        assert!(!r.on_chip);
        assert_eq!(f.reads, 1);
    }

    #[test]
    fn chip_hits_by_modulo() {
        let mut f = FlatFabric {
            chip_latency: 10,
            dram_latency: 100,
            chip_hit_modulo: 2,
            reads: 0,
        };
        assert!(f.read_line(LineAddr(4), 0).on_chip);
        assert!(!f.read_line(LineAddr(5), 0).on_chip);
    }
}
