//! Gates CI on the committed wall-time budget.
//!
//! ```text
//! timing_gate --budget perf_budget.toml <timing.json> [<timing.json> ...]
//! ```
//!
//! Each positional argument is a `meta/timing.json` written by `run_all`;
//! CI passes two smoke runs and the gate folds them best-of-N (minimum
//! per experiment, minimum wall-clock), so a single noisy scheduler
//! hiccup cannot fail the build. Exits 1 when any budgeted experiment
//! exceeds `reference × (1 + slack_frac)`, when the best wall-clock
//! exceeds the `[total] wall_secs` cap, or when the budget and the
//! timing record disagree about which experiments exist. See
//! `pageforge_bench::timing_gate` for the policy and DESIGN.md for why
//! wall-time is gated separately from byte-identity.

use pageforge_bench::scheduler::RunTiming;
use pageforge_bench::timing_gate::{evaluate, parse_budget};
use pageforge_types::json::{self, FromJson};

const USAGE: &str = "usage: timing_gate --budget perf_budget.toml <timing.json> [...]";

fn load_timing(path: &str) -> RunTiming {
    let raw =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("could not read {path}: {e}"));
    let value = json::parse(&raw).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e:?}"));
    RunTiming::from_json(&value).unwrap_or_else(|| panic!("{path}: not a run_all timing record"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_path: Option<&str> = None;
    let mut timing_paths: Vec<&str> = Vec::new();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--budget" => {
                budget_path = Some(iter.next().expect("--budget requires a path"));
            }
            other if !other.starts_with("--") => timing_paths.push(other),
            other => panic!("unknown argument `{other}`; {USAGE}"),
        }
    }
    let budget_path = budget_path.unwrap_or_else(|| panic!("{USAGE}"));
    assert!(!timing_paths.is_empty(), "{USAGE}");

    let budget_src = std::fs::read_to_string(budget_path)
        .unwrap_or_else(|e| panic!("could not read {budget_path}: {e}"));
    let budget = parse_budget(&budget_src).unwrap_or_else(|e| panic!("{e}"));
    let timings: Vec<RunTiming> = timing_paths.iter().map(|p| load_timing(p)).collect();

    let report = evaluate(&budget, &timings);
    println!(
        "timing_gate: best of {} run(s) vs {budget_path} (slack {:.0}%)",
        timings.len(),
        budget.slack_frac * 100.0
    );
    for line in &report.lines {
        println!(
            "  {} {:<24} {:>8.2}s  (limit {:>8.2}s)",
            if line.breach { "FAIL" } else { "  ok" },
            line.name,
            line.best_secs,
            line.limit_secs
        );
    }
    for err in &report.errors {
        println!("  FAIL {err}");
    }
    if report.failed() {
        eprintln!("timing_gate: wall-time budget breached");
        std::process::exit(1);
    }
    println!("timing_gate: within budget");
}
