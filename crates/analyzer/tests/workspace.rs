//! The self-test: the analyzer run against this repository itself must
//! be clean. This is the same invocation CI's `analysis` job makes, so
//! `cargo test` catches a violation (or a stale `analyzer.toml` entry —
//! stale entries surface as `ALLOW-STALE` findings) before CI does.

use std::path::PathBuf;

use pageforge_analyzer::analyze_workspace;

#[test]
fn workspace_is_clean_and_allowlist_is_live() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_workspace(&root).expect("workspace analyses");
    assert!(
        report.findings.is_empty(),
        "the workspace violates its own invariants:\n{:#?}",
        report.findings
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — enumeration is broken",
        report.files_scanned
    );
}
