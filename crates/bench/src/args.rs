//! Minimal, dependency-free command-line arguments shared by the bench
//! binaries.

use std::path::PathBuf;

use pageforge_types::DEFAULT_SEED;

/// Arguments accepted by every bench binary.
///
/// * `--seed <u64>` — RNG seed (default `0xC0FFEE`);
/// * `--quick` — down-scaled configuration (4 cores, short windows) for
///   smoke runs;
/// * `--out <dir>` — directory for JSON results (default `results/`);
/// * `--print-config` — print the Table 2 configuration and exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// RNG seed.
    pub seed: u64,
    /// Use the down-scaled quick configuration.
    pub quick: bool,
    /// JSON output directory.
    pub out_dir: PathBuf,
    /// Print the architecture configuration and exit.
    pub print_config: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            seed: DEFAULT_SEED,
            quick: false,
            out_dir: PathBuf::from("results"),
            print_config: false,
        }
    }
}

impl BenchArgs {
    /// Parses from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown or malformed arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit argument list (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--seed" => {
                    let v = iter.next().expect("--seed requires a value");
                    out.seed = parse_u64(&v);
                }
                "--quick" => out.quick = true,
                "--out" => {
                    out.out_dir = PathBuf::from(iter.next().expect("--out requires a value"));
                }
                "--print-config" => out.print_config = true,
                other => panic!(
                    "unknown argument `{other}`; \
                     usage: [--seed N] [--quick] [--out DIR] [--print-config]"
                ),
            }
        }
        out
    }
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("valid hex seed")
    } else {
        s.parse().expect("valid decimal seed")
    }
}

/// Prints the Table 2 architecture parameters.
pub fn print_table2() {
    println!("Architecture parameters (Table 2):");
    println!("  10 single-issue out-of-order cores @ 2 GHz");
    println!("  L1: 32KB 8-way WB, 2-cycle RT, 16 MSHRs, 64B lines");
    println!("  L2: 256KB 8-way WB, 6-cycle RT, 16 MSHRs");
    println!("  L3: 32MB 20-way WB shared, 20-cycle RT, 24 MSHRs/slice");
    println!("  Coherence: snoopy MESI at L3, 512b bus");
    println!("  Memory: 16GB, 2 channels, 8 ranks/channel, 8 banks/rank, 1 GHz DDR");
    println!("  VMs: 10, 1 core each (512MB in the paper; scaled images here)");
    println!("  KSM/PageForge: sleep_millisecs=5, pages_to_scan=400 (scaled 56)");
    println!("  Scan table: 31 Other Pages + 1 PFE (~260B); ECC hash key: 32 bits");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = BenchArgs::from_args(Vec::<String>::new());
        assert_eq!(a.seed, DEFAULT_SEED);
        assert!(!a.quick);
    }

    #[test]
    fn parses_all_flags() {
        let a = BenchArgs::from_args(
            ["--seed", "0x2A", "--quick", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.seed, 42);
        assert!(a.quick);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn decimal_seed() {
        let a = BenchArgs::from_args(["--seed", "7"].iter().map(|s| s.to_string()));
        assert_eq!(a.seed, 7);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        BenchArgs::from_args(["--frobnicate".to_string()]);
    }
}
