//! `REG-METRIC` and `REG-TRACE` — registry-consistency rules.
//!
//! OBSERVABILITY.md carries two normative tables: the metric namespace
//! (`### Metric namespace`) and the trace event schema (`### Trace
//! event schema`). These rules cross-check them against the code in
//! both directions:
//!
//! * a metric name registered in code but absent from the table is
//!   **undocumented** (finding at the registration site);
//! * a documented metric no code registers is **dead documentation**
//!   (finding at the table row);
//!
//! and likewise for `(component, kind)` trace pairs. Either table
//! parsing to empty is a hard error, so a doc refactor can never
//! silently disable the rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::Finding;
use crate::lexer::{Tok, TokKind};

/// Every metric name in the workspace starts with one of these
/// namespace roots (matching the table's `prefix` column).
pub const METRIC_PREFIXES: &[&str] = &[
    "engine.",
    "pageforge.",
    "faults.",
    "fleet.",
    "ksm.",
    "mem.",
    "sim.",
];

/// What the OBSERVABILITY.md tables document.
#[derive(Debug, Default)]
pub struct DocRegistry {
    /// Documented metric name → line of its table row.
    pub metrics: BTreeMap<String, u32>,
    /// Documented `(component, kind)` trace pair → line of its row.
    pub traces: BTreeMap<(String, String), u32>,
}

/// A metric-name or trace-pair occurrence in code.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Use {
    /// The metric name, or `component/kind` for traces.
    pub item: String,
    /// Workspace-relative path of the occurrence.
    pub path: String,
    /// 1-based line of the occurrence.
    pub line: u32,
}

/// Parses the two normative tables out of OBSERVABILITY.md.
///
/// # Errors
///
/// Returns a message if either table is missing or parses to empty —
/// an empty registry would vacuously pass the dead-doc check and mark
/// every code use undocumented, so it must be a loud failure instead.
pub fn parse_observability(md: &str) -> Result<DocRegistry, String> {
    let mut doc = DocRegistry::default();
    let mut section = Section::None;
    for (idx, raw) in md.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim();
        if line.starts_with("##") {
            section = match line.trim_start_matches('#').trim() {
                "Metric namespace" => Section::Metrics,
                "Trace event schema" => Section::Traces,
                _ => Section::None,
            };
            continue;
        }
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').collect();
        match section {
            Section::Metrics if cells.len() >= 4 => {
                let Some(prefix) = backticked(cells[1]).into_iter().next() else {
                    continue; // header or separator row
                };
                let base = prefix.trim_end_matches('*').trim_end_matches('.');
                for span in backticked(cells[3]) {
                    if !span
                        .chars()
                        .all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_' | '.' | '{' | '}' | ','))
                    {
                        continue;
                    }
                    for name in expand_braces(&span) {
                        doc.metrics.insert(format!("{base}.{name}"), lineno);
                    }
                }
            }
            Section::Traces if cells.len() >= 2 => {
                let spans = backticked(cells[1]);
                if spans.len() >= 2 {
                    doc.traces
                        .insert((spans[0].clone(), spans[1].clone()), lineno);
                }
            }
            _ => {}
        }
    }
    if doc.metrics.is_empty() {
        return Err(
            "OBSERVABILITY.md: `### Metric namespace` table missing or empty — \
                    REG-METRIC cannot run"
                .into(),
        );
    }
    if doc.traces.is_empty() {
        return Err(
            "OBSERVABILITY.md: `### Trace event schema` table missing or empty — \
                    REG-TRACE cannot run"
                .into(),
        );
    }
    Ok(doc)
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    None,
    Metrics,
    Traces,
}

/// Extracts the `` `code` `` spans from a markdown cell, in order.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        out.push(after[..end].to_owned());
        rest = &after[end + 1..];
    }
    out
}

/// Expands `{a,b}` alternation groups (`{stable,unstable}_tree.{size,depth}`
/// → 4 names). A brace without a closer is kept literally.
fn expand_braces(s: &str) -> Vec<String> {
    let Some(open) = s.find('{') else {
        return vec![s.to_owned()];
    };
    let Some(close_rel) = s[open..].find('}') else {
        return vec![s.to_owned()];
    };
    let close = open + close_rel;
    let mut out = Vec::new();
    for alt in s[open + 1..close].split(',') {
        out.extend(expand_braces(&format!(
            "{}{}{}",
            &s[..open],
            alt,
            &s[close + 1..]
        )));
    }
    out
}

/// Whether a string literal has the shape of a metric name: a known
/// namespace root, at least one segment after it, and only
/// `[a-z0-9_.]` characters.
pub fn is_metric_literal(s: &str) -> bool {
    METRIC_PREFIXES.iter().any(|p| s.starts_with(p))
        && !s.ends_with('.')
        && s.chars()
            .all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_' | '.'))
}

/// Collects metric-name literals from one file's test-stripped tokens.
pub fn collect_metric_uses(path: &str, toks: &[Tok], out: &mut Vec<Use>) {
    for t in toks {
        if t.kind == TokKind::Str && is_metric_literal(&t.text) {
            out.push(Use {
                item: t.text.clone(),
                path: path.to_owned(),
                line: t.line,
            });
        }
    }
}

/// Collects `(component, kind)` pairs from `trace_event!(..)` call
/// sites and `TraceEvent::new(..)` constructions: the first two string
/// literals inside the call's parentheses. Sites with fewer than two
/// literals (dynamic construction, e.g. `trace::parse_line`) are
/// skipped — they replay existing kinds rather than minting new ones.
pub fn collect_trace_uses(path: &str, toks: &[Tok], out: &mut Vec<Use>) {
    let mut i = 0usize;
    while i < toks.len() {
        let site = if toks[i].is_ident("trace_event")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            Some(i + 2)
        } else if toks[i].is_ident("TraceEvent")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            Some(i + 4)
        } else {
            None
        };
        let Some(open) = site else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        let mut depth = 1usize;
        let mut j = open + 1;
        let mut strs = Vec::new();
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
            } else if toks[j].kind == TokKind::Str && strs.len() < 2 {
                strs.push(toks[j].text.clone());
            }
            j += 1;
        }
        if strs.len() == 2 {
            out.push(Use {
                item: format!("{}/{}", strs[0], strs[1]),
                path: path.to_owned(),
                line,
            });
        }
        i = j;
    }
}

/// Cross-checks collected uses against the documented registry,
/// producing `REG-METRIC`/`REG-TRACE` findings in both directions.
pub fn check(
    doc: &DocRegistry,
    metric_uses: &[Use],
    trace_uses: &[Use],
    obs_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen_metrics: BTreeSet<&str> = BTreeSet::new();
    let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
    for u in metric_uses {
        seen_metrics.insert(&u.item);
        if !doc.metrics.contains_key(&u.item) && reported.insert((&u.path, &u.item)) {
            out.push(Finding {
                rule: "REG-METRIC",
                path: u.path.clone(),
                line: u.line,
                item: u.item.clone(),
                message: format!(
                    "metric `{}` is registered in code but undocumented in \
                     OBSERVABILITY.md's metric namespace table",
                    u.item
                ),
                hint: "add it to the owning prefix row in OBSERVABILITY.md \
                       (### Metric namespace) or rename to a documented metric",
            });
        }
    }
    for (name, &line) in &doc.metrics {
        if !seen_metrics.contains(name.as_str()) {
            out.push(Finding {
                rule: "REG-METRIC",
                path: obs_path.to_owned(),
                line,
                item: name.clone(),
                message: format!("metric `{name}` is documented but no code registers it"),
                hint: "delete the dead table entry, or restore the metric in code",
            });
        }
    }
    let mut seen_traces: BTreeSet<&str> = BTreeSet::new();
    let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
    for u in trace_uses {
        seen_traces.insert(&u.item);
        let documented = u
            .item
            .split_once('/')
            .is_some_and(|(c, k)| doc.traces.contains_key(&(c.to_owned(), k.to_owned())));
        if !documented && reported.insert((&u.path, &u.item)) {
            out.push(Finding {
                rule: "REG-TRACE",
                path: u.path.clone(),
                line: u.line,
                item: u.item.clone(),
                message: format!(
                    "trace event `{}` is emitted but undocumented in \
                     OBSERVABILITY.md's trace event schema",
                    u.item
                ),
                hint: "add a `component / kind` row to OBSERVABILITY.md \
                       (### Trace event schema) describing the fields",
            });
        }
    }
    for ((comp, kind), &line) in &doc.traces {
        let item = format!("{comp}/{kind}");
        if !seen_traces.contains(item.as_str()) {
            out.push(Finding {
                rule: "REG-TRACE",
                path: obs_path.to_owned(),
                line,
                item: item.clone(),
                message: format!("trace event `{item}` is documented but no code emits it"),
                hint: "delete the dead schema row, or restore the emission site",
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_tests};

    const DOC: &str = "\
### Metric namespace

| prefix | exported by | metrics |
|--------|-------------|---------|
| `engine.*` | `core` | `runs`, `{stable,unstable}_tree.{size,depth}` (gauges) |
| `mem.dram.*` | `mem` | `reads` |

### Trace event schema

| component / kind | emitted | fields |
|---|---|---|
| `engine` / `batch` | per batch | `cycles` |
";

    #[test]
    fn doc_tables_parse_with_brace_expansion() {
        let doc = parse_observability(DOC).unwrap();
        let names: Vec<&str> = doc.metrics.keys().map(String::as_str).collect();
        assert_eq!(
            names,
            [
                "engine.runs",
                "engine.stable_tree.depth",
                "engine.stable_tree.size",
                "engine.unstable_tree.depth",
                "engine.unstable_tree.size",
                "mem.dram.reads",
            ]
        );
        assert!(doc
            .traces
            .contains_key(&("engine".to_owned(), "batch".to_owned())));
    }

    #[test]
    fn empty_tables_are_a_hard_error() {
        assert!(parse_observability("# nothing here\n").is_err());
        assert!(
            parse_observability("### Metric namespace\n| `engine.*` | x | `runs` |\n").is_err()
        );
    }

    #[test]
    fn undocumented_and_dead_metrics_are_both_found() {
        let doc = parse_observability(DOC).unwrap();
        let src = r#"
fn f(r: &mut Registry) {
    r.counter("engine.runs");
    r.counter("engine.bogus_new");
    trace_event!(now, "engine", "batch", { cycles: c });
}
"#;
        let toks = strip_tests(&lex(src));
        let mut metrics = Vec::new();
        let mut traces = Vec::new();
        collect_metric_uses("crates/core/src/engine.rs", &toks, &mut metrics);
        collect_trace_uses("crates/core/src/engine.rs", &toks, &mut traces);
        let findings = check(&doc, &metrics, &traces, "OBSERVABILITY.md");
        let undocumented: Vec<_> = findings
            .iter()
            .filter(|f| f.path.ends_with("engine.rs"))
            .map(|f| f.item.as_str())
            .collect();
        assert_eq!(undocumented, ["engine.bogus_new"]);
        let dead: Vec<_> = findings
            .iter()
            .filter(|f| f.path == "OBSERVABILITY.md")
            .map(|f| f.item.as_str())
            .collect();
        // Everything documented but unused in this tiny source snippet.
        assert!(dead.contains(&"engine.stable_tree.size"));
        assert!(dead.contains(&"mem.dram.reads"));
        assert!(!dead.contains(&"engine.runs"));
        assert!(!dead.contains(&"engine/batch"));
    }

    #[test]
    fn trace_event_with_dynamic_kind_is_skipped() {
        let src = r#"fn f() { let e = TraceEvent::new(c, comp, kind, fields); }"#;
        let mut traces = Vec::new();
        collect_trace_uses("x.rs", &strip_tests(&lex(src)), &mut traces);
        assert!(traces.is_empty());
    }

    #[test]
    fn metric_literal_shape_rejects_prefix_only_and_odd_chars() {
        assert!(is_metric_literal("engine.runs"));
        assert!(is_metric_literal("mem.dram.row_hits"));
        assert!(!is_metric_literal("engine."));
        assert!(!is_metric_literal("engine.{}"));
        assert!(!is_metric_literal("results/meta"));
        assert!(!is_metric_literal("Engine.runs"));
    }
}
