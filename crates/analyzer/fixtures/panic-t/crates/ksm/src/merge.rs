//! Fixture: the panic is hidden in a private helper, two calls below
//! the hot-path entry point — the base PANIC-PATH rule cannot see it.

pub fn merge_pages() -> u64 {
    digest_helper()
}

fn digest_helper() -> u64 {
    let table = build_table();
    table.first().copied().unwrap()
}

fn build_table() -> Vec<u64> {
    vec![7]
}

/// Unreachable from any hot-path root: its unwrap must NOT be flagged.
pub fn cold_path() -> u64 {
    build_table().last().copied().unwrap()
}
