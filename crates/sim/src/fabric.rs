//! The real memory fabric: PageForge's reads probe the caches first
//! (§3.2.2), then fall through to the memory controller.

use pageforge_cache::SystemCaches;
use pageforge_core::fabric::{FabricRead, MemoryFabric};
use pageforge_mem::{MemSource, MemorySystem};
use pageforge_types::{Cycle, LineAddr};

/// Borrows the chip's caches and memory controller for the duration of a
/// PageForge operation.
#[derive(Debug)]
pub struct SimFabric<'a> {
    /// The chip caches (probed, never allocated into).
    pub caches: &'a mut SystemCaches,
    /// The memory system (PageForge-tagged traffic routes to the owning
    /// controller).
    pub mem: &'a mut MemorySystem,
}

impl MemoryFabric for SimFabric<'_> {
    fn read_line(&mut self, addr: LineAddr, now: Cycle) -> FabricRead {
        if let Some(latency) = self.caches.probe_from_mc(addr) {
            FabricRead {
                ready_at: now + latency,
                on_chip: true,
            }
        } else {
            let grant = self.mem.read_line(addr, now, MemSource::PageForge);
            FabricRead {
                ready_at: grant.ready_at,
                on_chip: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pageforge_cache::HierarchyConfig;
    use pageforge_mem::MemorySystemConfig;

    #[test]
    fn probes_caches_then_dram() {
        let mut caches = SystemCaches::new(HierarchyConfig::micro50(2));
        let mut mem = MemorySystem::new(MemorySystemConfig::micro50());
        // Core 0 caches line 7.
        caches.access(0, LineAddr(7), false);
        let mut fabric = SimFabric {
            caches: &mut caches,
            mem: &mut mem,
        };
        let hit = fabric.read_line(LineAddr(7), 0);
        assert!(hit.on_chip);
        let miss = fabric.read_line(LineAddr(1000), 0);
        assert!(!miss.on_chip);
        assert!(miss.ready_at > hit.ready_at);
        assert_eq!(mem.stats().pageforge_lines, 1, "only the miss reached DRAM");
    }
}
