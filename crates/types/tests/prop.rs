//! Property-based tests for the foundational types.

use proptest::prelude::*;

use pageforge_types::stats::{LatencyRecorder, RunningStats};
use pageforge_types::{LineAddr, PageData, PhysAddr, Ppn, LINES_PER_PAGE, PAGE_SIZE};

fn arb_page() -> impl Strategy<Value = PageData> {
    // Build pages from a handful of (offset, byte) pokes so interesting
    // structure (mostly-zero pages) is common.
    proptest::collection::vec((0..PAGE_SIZE, any::<u8>()), 0..32).prop_map(|pokes| {
        let mut p = PageData::zeroed();
        for (off, b) in pokes {
            p.as_bytes_mut()[off] = b;
        }
        p
    })
}

proptest! {
    #[test]
    fn content_cmp_is_consistent_with_eq(a in arb_page(), b in arb_page()) {
        let eq = a == b;
        prop_assert_eq!(eq, a.content_cmp(&b) == std::cmp::Ordering::Equal);
        prop_assert_eq!(a.content_cmp(&b), b.content_cmp(&a).reverse());
    }

    #[test]
    fn diverging_line_agrees_with_eq(a in arb_page(), b in arb_page()) {
        match a.first_diverging_line(&b) {
            None => prop_assert_eq!(&a, &b),
            Some(i) => {
                prop_assert!(i < LINES_PER_PAGE);
                prop_assert_ne!(a.line(i), b.line(i));
                for j in 0..i {
                    prop_assert_eq!(a.line(j), b.line(j));
                }
            }
        }
    }

    #[test]
    fn bytes_examined_bounds(a in arb_page(), b in arb_page()) {
        let n = a.bytes_examined(&b);
        prop_assert!(n >= 1 && n <= PAGE_SIZE);
        if a != b {
            // The diverging byte sits in the diverging line.
            let line = a.first_diverging_line(&b).unwrap();
            prop_assert!(n > line * 64 && n <= (line + 1) * 64);
        }
    }

    #[test]
    fn phys_addr_decomposition_round_trips(raw in 0u64..(1 << 40)) {
        let a = PhysAddr(raw);
        let reassembled = a.ppn().base_addr().0 + a.page_offset() as u64;
        prop_assert_eq!(reassembled, raw);
        prop_assert_eq!(a.line().ppn(), a.ppn());
    }

    #[test]
    fn ppn_line_addr_bijective(ppn in 0u64..(1 << 28), line in 0usize..LINES_PER_PAGE) {
        let la = Ppn(ppn).line_addr(line);
        prop_assert_eq!(la.ppn(), Ppn(ppn));
        prop_assert_eq!(la.line_in_page(), line);
        prop_assert_eq!(LineAddr(la.0), la.base_addr().line());
    }

    #[test]
    fn running_stats_mean_in_range(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn stats_merge_is_order_independent(
        xs in proptest::collection::vec(0f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let (l, r) = xs.split_at(split);
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in l { a.push(x); }
        for &x in r { b.push(x); }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.population_stddev() - ba.population_stddev()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone(xs in proptest::collection::vec(0f64..1e6, 1..300)) {
        let mut r = LatencyRecorder::new();
        for &x in &xs {
            r.record(x);
        }
        let p50 = r.percentile(0.5);
        let p95 = r.percentile(0.95);
        let p100 = r.percentile(1.0);
        prop_assert!(p50 <= p95 && p95 <= p100);
        prop_assert!(xs.contains(&p95));
    }
}
