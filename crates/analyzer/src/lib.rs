//! pageforge-analyzer — the workspace invariant linter.
//!
//! Every headline number this reproduction reports rests on invariants
//! the type system cannot express: byte-identical results across
//! `--jobs` levels (determinism), graceful degradation instead of
//! aborts on the engine hot path (panic-freedom), OBSERVABILITY.md
//! matching the metrics and trace events the code actually emits
//! (registry consistency), and uniform crate hygiene. This crate
//! *proves them statically*: it lexes every workspace source file and
//! enforces six rules, with a reviewed, justification-carrying
//! allowlist (`analyzer.toml`) as the only escape hatch.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `DET-HASH`     | no `HashMap`/`HashSet` in result-affecting crates |
//! | `DET-TIME`     | no wall clock / OS rng / env reads outside bench timing |
//! | `PANIC-PATH`   | no `unwrap`/`expect`/panicking macro/indexing on the hot path |
//! | `PANIC-PATH-T` | no explicit panic construct *reachable* from the hot path |
//! | `LOCK-ORDER`   | the fleet's mutex-acquisition order is acyclic |
//! | `SPEC-SAFE`    | domain worker closures touch no unsanctioned shared state |
//! | `REG-METRIC`   | metric names ⊆ OBSERVABILITY.md, and nothing documented is dead |
//! | `REG-TRACE`    | trace `(component, kind)` pairs likewise |
//! | `HYG-CRATE`    | every lib crate forbids unsafe and denies missing docs |
//!
//! The first six rules up to `SPEC-SAFE` are flow-aware: the analyzer
//! parses every file into an item tree ([`parse`]), builds a
//! workspace-wide function-level call graph ([`callgraph`]) with
//! ambiguous calls *reported rather than dropped*, and computes
//! shared-state dataflow facts over it ([`dataflow`]).
//!
//! See ANALYSIS.md for the full rationale and the allowlist policy.
//! Run as `cargo run --release -p pageforge-analyzer`; CI runs it as
//! the `analysis` job and fails the build on any finding.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod findings;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use callgraph::{CallGraph, Unresolved};
use config::AllowEntry;
use dataflow::Marker;
use findings::{sort_findings, Finding};
use lexer::Tok;

/// The rule ids an `analyzer.toml` entry may reference. `ALLOW-STALE`
/// is deliberately absent: a stale-entry finding is fixed by deleting
/// the entry, never by allowlisting the allowlist.
pub const RULE_IDS: &[&str] = &[
    "DET-HASH",
    "DET-TIME",
    "PANIC-PATH",
    "PANIC-PATH-T",
    "LOCK-ORDER",
    "SPEC-SAFE",
    "REG-METRIC",
    "REG-TRACE",
    "HYG-CRATE",
];

/// The parsed, resolved view of the workspace the flow-aware rules
/// run against: test-stripped token streams, the call graph, and the
/// precomputed shared-state dataflow facts.
#[derive(Debug)]
pub struct Workspace {
    /// `(workspace-relative path, test-stripped tokens)`, sorted by path.
    pub files: Vec<(String, Vec<Tok>)>,
    /// The resolved call graph over every parsed function.
    pub graph: CallGraph,
    /// Per-function direct shared-state markers (indexed like
    /// `graph.fns`).
    pub markers: Vec<Vec<Marker>>,
    /// Per-function transitive lock classes.
    pub lock_classes: Vec<BTreeSet<String>>,
    /// Per-function flag: reaches any marker transitively.
    pub marker_reach: Vec<bool>,
}

impl Workspace {
    /// Parses, resolves, and closes over `files` (test-stripped token
    /// streams keyed by workspace-relative path).
    pub fn build(mut files: Vec<(String, Vec<Tok>)>) -> Workspace {
        files.sort_by(|a, b| a.0.cmp(&b.0));
        let mut fns = Vec::new();
        for (rel, toks) in &files {
            fns.extend(parse::parse_file(rel, toks));
        }
        let graph = CallGraph::build(&files, fns);
        let markers: Vec<Vec<Marker>> = graph
            .fns
            .iter()
            .map(|f| {
                let toks = files
                    .iter()
                    .find(|(rel, _)| *rel == f.path)
                    .map(|(_, t)| t.as_slice())
                    .unwrap_or(&[]);
                dataflow::direct_markers(f, toks)
            })
            .collect();
        let lock_classes = dataflow::transitive_lock_classes(&graph, &markers);
        let marker_reach = dataflow::reaches_marker(&graph, &markers);
        Workspace {
            files,
            graph,
            markers,
            lock_classes,
            marker_reach,
        }
    }

    /// The token stream for a workspace-relative path (empty when the
    /// path is unknown).
    pub fn toks(&self, rel: &str) -> &[Tok] {
        self.files
            .iter()
            .find(|(p, _)| p == rel)
            .map(|(_, t)| t.as_slice())
            .unwrap_or(&[])
    }
}

/// The outcome of analysing a workspace.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings (violations not covered by `analyzer.toml`),
    /// plus one `ALLOW-STALE` finding per unused allowlist entry.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed and scanned.
    pub files_scanned: usize,
    /// Number of findings suppressed by `analyzer.toml` entries.
    pub suppressed: usize,
    /// Number of functions in the workspace call graph.
    pub functions: usize,
    /// Number of resolved (caller, callee) call edges.
    pub call_edges: usize,
    /// Ambiguous call sites the resolver surfaced rather than dropped.
    pub unresolved: Vec<Unresolved>,
    /// Method calls only the receiver-resolution tier could pin down.
    pub receiver_resolved: usize,
}

/// Analyses the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`, `crates/`, and `OBSERVABILITY.md`).
///
/// # Errors
///
/// Returns a message for I/O failures, a malformed `analyzer.toml`
/// (missing reasons, unknown keys or rule ids), or OBSERVABILITY.md
/// tables that are missing/empty (which would silently disable the
/// registry rules).
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let files = enumerate_sources(root)?;
    let files_scanned = files.len();

    let mut findings: Vec<Finding> = Vec::new();
    let mut metric_uses = Vec::new();
    let mut trace_uses = Vec::new();
    let mut stripped: Vec<(String, Vec<Tok>)> = Vec::with_capacity(files.len());

    for abs in &files {
        let rel = rel_path(root, abs);
        let src = fs::read_to_string(abs).map_err(|e| format!("{rel}: {e}"))?;
        let raw = lexer::lex(&src);
        let code = lexer::strip_tests(&raw);

        rules::determinism::det_hash(&rel, &code, &mut findings);
        rules::determinism::det_time(&rel, &code, &mut findings);
        rules::panics::panic_path(&rel, &code, &mut findings);
        if is_crate_root(&rel) {
            rules::hygiene::hyg_crate(&rel, &raw, &mut findings);
        }
        rules::registry::collect_metric_uses(&rel, &code, &mut metric_uses);
        rules::registry::collect_trace_uses(&rel, &code, &mut trace_uses);
        stripped.push((rel, code));
    }

    let ws = Workspace::build(stripped);
    rules::panic_path_t::run(&ws, &mut findings);
    rules::lock_order::run(&ws, &mut findings);
    rules::spec_safe::run(&ws, &mut findings);

    let obs_path = root.join("OBSERVABILITY.md");
    let obs = fs::read_to_string(&obs_path)
        .map_err(|e| format!("OBSERVABILITY.md: {e} (REG rules need the normative tables)"))?;
    let doc = rules::registry::parse_observability(&obs)?;
    findings.extend(rules::registry::check(
        &doc,
        &metric_uses,
        &trace_uses,
        "OBSERVABILITY.md",
    ));

    let allowlist = load_allowlist(root)?;
    let mut used = vec![false; allowlist.len()];
    let mut suppressed = 0usize;
    findings.retain(|f| {
        match allowlist
            .iter()
            .position(|e| e.matches(f.rule, &f.path, &f.item))
        {
            Some(idx) => {
                used[idx] = true;
                suppressed += 1;
                false
            }
            None => true,
        }
    });
    for (entry, used) in allowlist.iter().zip(&used) {
        if !used {
            findings.push(stale_entry_finding(entry));
        }
    }

    sort_findings(&mut findings);
    Ok(Report {
        findings,
        files_scanned,
        suppressed,
        functions: ws.graph.fns.len(),
        call_edges: ws.graph.edge_count(),
        unresolved: ws.graph.unresolved.clone(),
        receiver_resolved: ws.graph.receiver_resolved,
    })
}

/// Renders a report exactly as the CLI prints it: one block per
/// finding, then the call-graph line, then the one-line summary.
/// Golden tests compare this string against checked-in `expected.txt`
/// files.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "pageforge-analyzer: call graph: {} functions, {} edges, {} unresolved calls, \
         {} resolved via receiver\n",
        report.functions,
        report.call_edges,
        report.unresolved.len(),
        report.receiver_resolved
    ));
    out.push_str(&format!(
        "pageforge-analyzer: {} files scanned, {} finding(s), {} suppressed by analyzer.toml\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    ));
    out
}

/// Renders a report as the machine-readable JSON document the CI
/// `analysis` job uploads as an artifact. Keys are emitted in sorted
/// (alphabetical) order at every level and the document ends in a
/// newline, so output is byte-stable; `schema` is bumped on any shape
/// change. See ANALYSIS.md § "JSON output" for the schema.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"call_edges\": {},\n", report.call_edges));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"hint\": {}, \"item\": {}, \"line\": {}, \"message\": {}, \
             \"path\": {}, \"rule\": {}}}",
            json_str(f.hint),
            json_str(&f.item),
            f.line,
            json_str(&f.message),
            json_str(&f.path),
            json_str(f.rule)
        ));
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str(&format!("  \"functions\": {},\n", report.functions));
    out.push_str(&format!(
        "  \"receiver_resolved\": {},\n",
        report.receiver_resolved
    ));
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    out.push_str("  \"unresolved\": [");
    for (i, u) in report.unresolved.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"candidates\": {}, \"line\": {}, \"name\": {}, \"path\": {}}}",
            u.candidates,
            u.line,
            json_str(&u.name),
            json_str(&u.path)
        ));
    }
    out.push_str(if report.unresolved.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str(&format!(
        "  \"unresolved_calls\": {}\n}}\n",
        report.unresolved.len()
    ));
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars —
/// everything else in this codebase's findings is printable ASCII or
/// UTF-8 that JSON passes through verbatim).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// All `.rs` files under `<root>/src` and `<root>/crates/*/src`, in
/// sorted order so reports (and the analyzer's own exit behaviour) are
/// deterministic. Vendored third-party code, fixtures, integration
/// tests, and build output are outside these roots by construction.
fn enumerate_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut src_dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| format!("crates/: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        src_dirs.extend(names.into_iter().map(|p| p.join("src")));
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        if dir.is_dir() {
            walk_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    // `read_dir` yields entries in filesystem order, which differs
    // across machines; sort before descending so nothing downstream can
    // ever observe inode order.
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (the form rules,
/// reports, and `analyzer.toml` all use).
fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Whether a relative path is a library crate root (`src/lib.rs` of the
/// facade crate or of a `crates/<name>` member).
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let mut parts = rel.split('/');
    matches!(
        (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next()
        ),
        (Some("crates"), Some(_), Some("src"), Some("lib.rs"), None)
    )
}

/// Loads and validates `<root>/analyzer.toml`; a missing file is an
/// empty allowlist (zero exceptions is the ideal state).
fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join("analyzer.toml");
    let src = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("analyzer.toml: {e}")),
    };
    let entries = config::parse_allowlist(&src)?;
    for entry in &entries {
        if !RULE_IDS.contains(&entry.rule.as_str()) {
            return Err(format!(
                "analyzer.toml:{}: unknown rule id `{}` (known: {})",
                entry.line,
                entry.rule,
                RULE_IDS.join(", ")
            ));
        }
    }
    Ok(entries)
}

fn stale_entry_finding(entry: &AllowEntry) -> Finding {
    let item = match &entry.item {
        Some(item) => format!("{} {} {item}", entry.rule, entry.path),
        None => format!("{} {}", entry.rule, entry.path),
    };
    Finding {
        rule: "ALLOW-STALE",
        path: "analyzer.toml".to_owned(),
        line: entry.line,
        item,
        message: format!(
            "allowlist entry ({}, {}{}) matched no finding — the code it \
             excused is gone",
            entry.rule,
            entry.path,
            entry
                .item
                .as_deref()
                .map(|i| format!(", item {i}"))
                .unwrap_or_default()
        ),
        hint: "delete the stale [[allow]] entry so the allowlist only ever \
               carries live, justified exceptions",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            findings: vec![Finding {
                rule: "DET-HASH",
                path: "crates/core/src/engine.rs".to_owned(),
                line: 7,
                item: "HashMap".to_owned(),
                message: "say \"no\"".to_owned(),
                hint: "use BTreeMap",
            }],
            files_scanned: 3,
            suppressed: 1,
            functions: 12,
            call_edges: 9,
            unresolved: vec![Unresolved {
                path: "crates/core/src/engine.rs".to_owned(),
                line: 9,
                name: "dup".to_owned(),
                candidates: 2,
            }],
            receiver_resolved: 4,
        }
    }

    #[test]
    fn render_includes_the_call_graph_line() {
        let text = render(&sample_report());
        assert!(text.contains(
            "pageforge-analyzer: call graph: 12 functions, 9 edges, 1 unresolved calls, \
             4 resolved via receiver\n"
        ));
        assert!(text.ends_with(
            "pageforge-analyzer: 3 files scanned, 1 finding(s), 1 suppressed by analyzer.toml\n"
        ));
    }

    #[test]
    fn json_is_sorted_escaped_and_newline_terminated() {
        let json = render_json(&sample_report());
        assert!(json.starts_with("{\n  \"call_edges\": 9,\n  \"files_scanned\": 3,\n"));
        assert!(json.contains("\"message\": \"say \\\"no\\\"\""));
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"receiver_resolved\": 4,\n"));
        assert!(json.contains("\"unresolved_calls\": 1\n}\n"));
        assert!(json.ends_with("}\n"));
        // Keys appear in alphabetical order.
        let order = [
            "call_edges",
            "files_scanned",
            "findings",
            "functions",
            "receiver_resolved",
            "schema",
            "suppressed",
            "unresolved",
            "unresolved_calls",
        ];
        let mut last = 0;
        for key in order {
            let at = json.find(&format!("\"{key}\"")).unwrap();
            assert!(at > last, "{key} out of order");
            last = at;
        }
    }

    #[test]
    fn empty_report_json_has_empty_arrays() {
        let report = Report {
            findings: Vec::new(),
            files_scanned: 0,
            suppressed: 0,
            functions: 0,
            call_edges: 0,
            unresolved: Vec::new(),
            receiver_resolved: 0,
        };
        let json = render_json(&report);
        assert!(json.contains("\"findings\": [],\n"));
        assert!(json.contains("\"unresolved\": [],\n"));
    }

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/ksm/src/lib.rs"));
        assert!(!is_crate_root("crates/ksm/src/algorithm.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/lib.rs"));
        assert!(!is_crate_root("src/main.rs"));
    }
}
