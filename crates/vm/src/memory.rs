//! Host physical memory, guest mappings, copy-on-write, and page merging.
//!
//! This is the hypervisor-side state that same-page merging manipulates
//! (Figure 1 of the paper): each VM maps guest frame numbers to host
//! physical frames; merging repoints several guest mappings at one shared,
//! CoW-protected frame and frees the rest.

use std::collections::BTreeMap;
use std::fmt;

use pageforge_obs::{CounterId, Registry};
use pageforge_types::json::{obj, FromJson, ToJson, Value};
use pageforge_types::{Gfn, PageData, Ppn, VmId};

/// A host physical frame: its contents plus the CoW protection bit.
#[derive(Debug, Clone)]
struct Frame {
    data: PageData,
    cow: bool,
    /// Allocation epoch: frame numbers are recycled, so holders of a `Ppn`
    /// (e.g. KSM tree nodes) compare epochs to detect staleness.
    epoch: u64,
    /// Reverse mappings: every (VM, guest frame) currently mapping here.
    rmap: Vec<(VmId, Gfn)>,
}

/// Counters describing the merge state of a [`HostMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Frames currently allocated.
    pub allocated_frames: usize,
    /// Guest pages currently mapped (the footprint *without* merging).
    pub mapped_guest_pages: usize,
    /// Total successful merges performed.
    pub merges: u64,
    /// Total CoW breaks (writes to shared frames).
    pub cow_breaks: u64,
    /// Frames freed by merging, cumulative.
    pub frames_freed_by_merge: u64,
}

impl MemoryStats {
    /// Fraction of the unmerged footprint saved by merging, in `[0, 1)`.
    pub fn savings_fraction(&self) -> f64 {
        if self.mapped_guest_pages == 0 {
            return 0.0;
        }
        1.0 - self.allocated_frames as f64 / self.mapped_guest_pages as f64
    }
}

impl ToJson for MemoryStats {
    fn to_json(&self) -> Value {
        obj([
            ("allocated_frames", self.allocated_frames.to_json()),
            ("mapped_guest_pages", self.mapped_guest_pages.to_json()),
            ("merges", self.merges.to_json()),
            ("cow_breaks", self.cow_breaks.to_json()),
            (
                "frames_freed_by_merge",
                self.frames_freed_by_merge.to_json(),
            ),
        ])
    }
}

impl FromJson for MemoryStats {
    fn from_json(value: &Value) -> Option<Self> {
        Some(MemoryStats {
            allocated_frames: usize::from_json(value.get("allocated_frames")?)?,
            mapped_guest_pages: usize::from_json(value.get("mapped_guest_pages")?)?,
            merges: u64::from_json(value.get("merges")?)?,
            cow_breaks: u64::from_json(value.get("cow_breaks")?)?,
            frames_freed_by_merge: u64::from_json(value.get("frames_freed_by_merge")?)?,
        })
    }
}

/// Outcome of a guest write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The frame was private (or unprotected): written in place.
    InPlace(Ppn),
    /// The frame was shared and CoW-protected: a private copy was made for
    /// the writer and written instead.
    CowBroken {
        /// The writer's new private frame.
        new_frame: Ppn,
        /// The shared frame the writer was unmapped from.
        old_frame: Ppn,
    },
}

impl WriteOutcome {
    /// The frame that now holds the written data.
    pub fn frame(self) -> Ppn {
        match self {
            WriteOutcome::InPlace(p) => p,
            WriteOutcome::CowBroken { new_frame, .. } => new_frame,
        }
    }

    /// `true` if the write triggered a copy-on-write.
    pub fn broke_cow(self) -> bool {
        matches!(self, WriteOutcome::CowBroken { .. })
    }
}

/// Error returned by [`HostMemory::merge_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// One of the frames does not exist.
    NoSuchFrame(Ppn),
    /// The two frames do not have identical contents. Merging them would
    /// corrupt a guest; the final write-protected comparison (§3.5) exists
    /// precisely to catch this.
    ContentMismatch,
    /// Attempted to merge a frame into itself.
    SameFrame(Ppn),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoSuchFrame(p) => write!(f, "frame {p} does not exist"),
            MergeError::ContentMismatch => write!(f, "page contents differ"),
            MergeError::SameFrame(p) => write!(f, "cannot merge frame {p} into itself"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Host physical memory with per-VM guest mappings, reverse mappings,
/// copy-on-write, and page merging.
///
/// Deterministic by construction: frame numbers are handed out sequentially
/// (recycling freed frames LIFO) and all maps iterate in sorted order.
#[derive(Debug, Clone)]
pub struct HostMemory {
    frames: BTreeMap<Ppn, Frame>,
    guest: BTreeMap<(VmId, Gfn), Ppn>,
    free_list: Vec<Ppn>,
    next_ppn: u64,
    epoch_counter: u64,
    metrics: Registry,
    ids: MemMetricIds,
}

/// Ids of the cumulative merge counters in the metric registry
/// (`mem.*` namespace; see OBSERVABILITY.md).
#[derive(Debug, Clone, Copy)]
struct MemMetricIds {
    merges: CounterId,
    cow_breaks: CounterId,
    frames_freed_by_merge: CounterId,
}

impl MemMetricIds {
    fn register(reg: &mut Registry) -> Self {
        MemMetricIds {
            merges: reg.counter("mem.merges"),
            cow_breaks: reg.counter("mem.cow_breaks"),
            frames_freed_by_merge: reg.counter("mem.frames_freed_by_merge"),
        }
    }
}

impl Default for HostMemory {
    fn default() -> Self {
        let mut metrics = Registry::new();
        let ids = MemMetricIds::register(&mut metrics);
        HostMemory {
            frames: BTreeMap::new(),
            guest: BTreeMap::new(),
            free_list: Vec::new(),
            next_ppn: 0,
            epoch_counter: 0,
            metrics,
            ids,
        }
    }
}

impl HostMemory {
    /// Creates an empty host memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc_ppn(&mut self) -> Ppn {
        if let Some(p) = self.free_list.pop() {
            return p;
        }
        let p = Ppn(self.next_ppn);
        self.next_ppn += 1;
        p
    }

    /// Allocates a fresh frame holding `data` and maps it at `(vm, gfn)`.
    ///
    /// # Panics
    ///
    /// Panics if `(vm, gfn)` is already mapped; unmap first.
    pub fn map_new_page(&mut self, vm: VmId, gfn: Gfn, data: PageData) -> Ppn {
        assert!(
            !self.guest.contains_key(&(vm, gfn)),
            "({vm}, {gfn}) is already mapped"
        );
        let ppn = self.alloc_ppn();
        self.epoch_counter += 1;
        self.frames.insert(
            ppn,
            Frame {
                data,
                cow: false,
                epoch: self.epoch_counter,
                rmap: vec![(vm, gfn)],
            },
        );
        self.guest.insert((vm, gfn), ppn);
        ppn
    }

    /// The allocation epoch of a frame: recycled frame numbers get a new
    /// epoch, so `(Ppn, epoch)` pairs uniquely identify an allocation.
    pub fn frame_epoch(&self, ppn: Ppn) -> Option<u64> {
        self.frames.get(&ppn).map(|f| f.epoch)
    }

    /// Translates a guest page to its host frame.
    pub fn translate(&self, vm: VmId, gfn: Gfn) -> Option<Ppn> {
        self.guest.get(&(vm, gfn)).copied()
    }

    /// The contents of a frame, if it exists.
    pub fn frame_data(&self, ppn: Ppn) -> Option<&PageData> {
        self.frames.get(&ppn).map(|f| &f.data)
    }

    /// Number of guest pages mapping a frame (0 if it does not exist).
    pub fn refcount(&self, ppn: Ppn) -> usize {
        self.frames.get(&ppn).map_or(0, |f| f.rmap.len())
    }

    /// Whether a frame is CoW-protected.
    pub fn is_cow(&self, ppn: Ppn) -> bool {
        self.frames.get(&ppn).is_some_and(|f| f.cow)
    }

    /// Marks a frame CoW-protected (write-protects all its mappings).
    ///
    /// # Panics
    ///
    /// Panics if the frame does not exist.
    pub fn cow_protect(&mut self, ppn: Ppn) {
        self.frames
            .get_mut(&ppn)
            .unwrap_or_else(|| panic!("cow_protect: frame {ppn} does not exist"))
            .cow = true;
    }

    /// Reads the page mapped at `(vm, gfn)`.
    pub fn guest_read(&self, vm: VmId, gfn: Gfn) -> Option<&PageData> {
        let ppn = self.translate(vm, gfn)?;
        self.frame_data(ppn)
    }

    /// Writes `bytes` at `offset` into the page mapped at `(vm, gfn)`,
    /// enforcing copy-on-write: if the target frame is shared and protected,
    /// the writer gets a private copy first (the OS behaviour described in
    /// §2.1: "the OS enforces the CoW policy by creating a copy of the page
    /// and providing it to the process that performed the write").
    ///
    /// # Panics
    ///
    /// Panics if `(vm, gfn)` is not mapped, or the write overruns the page.
    pub fn guest_write(&mut self, vm: VmId, gfn: Gfn, offset: usize, bytes: &[u8]) -> WriteOutcome {
        let ppn = self
            .translate(vm, gfn)
            .unwrap_or_else(|| panic!("guest_write: ({vm}, {gfn}) is not mapped"));
        let frame = self.frames.get_mut(&ppn).expect("mapped frame exists");
        assert!(
            offset + bytes.len() <= pageforge_types::PAGE_SIZE,
            "write overruns the page"
        );
        if frame.cow {
            // Copy-on-write: give the writer a private copy. Like Linux KSM
            // pages, a CoW frame is *never* written in place — even a sole
            // mapper gets a fresh copy, keeping the merged (stable) frame
            // immutable for its whole lifetime.
            let mut copy = frame.data.clone();
            copy.as_bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
            frame.rmap.retain(|&m| m != (vm, gfn));
            let orphaned = frame.rmap.is_empty();
            self.guest.remove(&(vm, gfn));
            self.metrics.inc(self.ids.cow_breaks);
            // Allocate the copy *before* freeing an orphaned frame so the
            // writer never receives the frame number it just left.
            let new_ppn = self.alloc_ppn();
            if orphaned {
                self.frames.remove(&ppn);
                self.free_list.push(ppn);
            }
            self.epoch_counter += 1;
            self.frames.insert(
                new_ppn,
                Frame {
                    data: copy,
                    cow: false,
                    epoch: self.epoch_counter,
                    rmap: vec![(vm, gfn)],
                },
            );
            self.guest.insert((vm, gfn), new_ppn);
            WriteOutcome::CowBroken {
                new_frame: new_ppn,
                old_frame: ppn,
            }
        } else {
            frame.data.as_bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
            WriteOutcome::InPlace(ppn)
        }
    }

    /// Merges frame `drop` into frame `keep`: verifies the contents are
    /// identical, repoints every mapping of `drop` at `keep`, CoW-protects
    /// `keep`, and frees `drop`.
    ///
    /// This is the `merge` step of Algorithm 1 (and what the hypervisor does
    /// when PageForge reports a duplicate).
    ///
    /// # Errors
    ///
    /// * [`MergeError::SameFrame`] if `keep == drop`;
    /// * [`MergeError::NoSuchFrame`] if either frame is unallocated;
    /// * [`MergeError::ContentMismatch`] if the contents differ (the
    ///   write-protected final comparison failed).
    pub fn merge_into(&mut self, keep: Ppn, drop: Ppn) -> Result<(), MergeError> {
        if keep == drop {
            return Err(MergeError::SameFrame(keep));
        }
        if !self.frames.contains_key(&keep) {
            return Err(MergeError::NoSuchFrame(keep));
        }
        if !self.frames.contains_key(&drop) {
            return Err(MergeError::NoSuchFrame(drop));
        }
        let equal = {
            let a = &self.frames[&keep].data;
            let b = &self.frames[&drop].data;
            a == b
        };
        if !equal {
            return Err(MergeError::ContentMismatch);
        }
        let dropped = self.frames.remove(&drop).expect("checked above");
        for &(vm, gfn) in &dropped.rmap {
            self.guest.insert((vm, gfn), keep);
        }
        let kept = self.frames.get_mut(&keep).expect("checked above");
        kept.rmap.extend(dropped.rmap);
        kept.cow = true;
        self.free_list.push(drop);
        self.metrics.inc(self.ids.merges);
        self.metrics.inc(self.ids.frames_freed_by_merge);
        Ok(())
    }

    /// Unmaps `(vm, gfn)`, freeing the frame if this was the last mapping.
    /// Returns the frame it was mapped to, if any.
    pub fn unmap(&mut self, vm: VmId, gfn: Gfn) -> Option<Ppn> {
        let ppn = self.guest.remove(&(vm, gfn))?;
        let frame = self.frames.get_mut(&ppn).expect("mapped frame exists");
        frame.rmap.retain(|&m| m != (vm, gfn));
        if frame.rmap.is_empty() {
            self.frames.remove(&ppn);
            self.free_list.push(ppn);
        }
        Some(ppn)
    }

    /// Number of frames currently allocated (the footprint *with* merging).
    pub fn allocated_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of guest pages currently mapped (the footprint *without*
    /// merging).
    pub fn mapped_guest_pages(&self) -> usize {
        self.guest.len()
    }

    /// All guest mappings of a frame.
    pub fn reverse_map(&self, ppn: Ppn) -> &[(VmId, Gfn)] {
        self.frames.get(&ppn).map_or(&[], |f| &f.rmap)
    }

    /// Iterates over all allocated frames in frame-number order.
    pub fn iter_frames(&self) -> impl Iterator<Item = (Ppn, &PageData, bool)> {
        self.frames.iter().map(|(&p, f)| (p, &f.data, f.cow))
    }

    /// Iterates over all guest mappings in (VM, GFN) order.
    pub fn iter_mappings(&self) -> impl Iterator<Item = (VmId, Gfn, Ppn)> + '_ {
        self.guest.iter().map(|(&(vm, gfn), &ppn)| (vm, gfn, ppn))
    }

    /// Snapshot of the merge statistics — a view assembled from the
    /// metric registry plus the live footprint gauges.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            allocated_frames: self.allocated_frames(),
            mapped_guest_pages: self.mapped_guest_pages(),
            merges: self.metrics.counter_value(self.ids.merges),
            cow_breaks: self.metrics.counter_value(self.ids.cow_breaks),
            frames_freed_by_merge: self.metrics.counter_value(self.ids.frames_freed_by_merge),
        }
    }

    /// The cumulative merge counters plus point-in-time footprint gauges
    /// as a metric registry (`mem.*` namespace), for aggregation into a
    /// simulation-wide snapshot.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = self.metrics.clone();
        let allocated = reg.gauge("mem.allocated_frames");
        reg.set(allocated, self.allocated_frames() as f64);
        let mapped = reg.gauge("mem.mapped_guest_pages");
        reg.set(mapped, self.mapped_guest_pages() as f64);
        reg
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// Invariants:
    /// 1. every guest mapping points at an allocated frame whose rmap
    ///    contains it;
    /// 2. every rmap entry is a live guest mapping pointing back at the
    ///    frame;
    /// 3. no frame has an empty rmap;
    /// 4. frames shared by >1 mapping are CoW-protected *only if* marked.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&(vm, gfn), &ppn) in &self.guest {
            let frame = self
                .frames
                .get(&ppn)
                .ok_or_else(|| format!("mapping ({vm},{gfn})→{ppn} points at missing frame"))?;
            if !frame.rmap.contains(&(vm, gfn)) {
                return Err(format!("frame {ppn} rmap is missing ({vm},{gfn})"));
            }
        }
        for (&ppn, frame) in &self.frames {
            if frame.rmap.is_empty() {
                return Err(format!("frame {ppn} has an empty rmap"));
            }
            for &(vm, gfn) in &frame.rmap {
                if self.guest.get(&(vm, gfn)) != Some(&ppn) {
                    return Err(format!("rmap entry ({vm},{gfn}) of {ppn} is stale"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> PageData {
        PageData::from_fn(|_| b)
    }

    #[test]
    fn map_and_translate() {
        let mut mem = HostMemory::new();
        let p = mem.map_new_page(VmId(0), Gfn(1), page(1));
        assert_eq!(mem.translate(VmId(0), Gfn(1)), Some(p));
        assert_eq!(mem.translate(VmId(0), Gfn(2)), None);
        assert_eq!(mem.frame_data(p), Some(&page(1)));
        assert_eq!(mem.refcount(p), 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut mem = HostMemory::new();
        mem.map_new_page(VmId(0), Gfn(1), page(1));
        mem.map_new_page(VmId(0), Gfn(1), page(2));
    }

    #[test]
    fn merge_identical_pages() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        let b = mem.map_new_page(VmId(1), Gfn(9), page(7));
        mem.merge_into(a, b).unwrap();
        assert_eq!(mem.allocated_frames(), 1);
        assert_eq!(mem.mapped_guest_pages(), 2);
        assert_eq!(mem.translate(VmId(1), Gfn(9)), Some(a));
        assert_eq!(mem.refcount(a), 2);
        assert!(mem.is_cow(a));
        assert_eq!(mem.stats().merges, 1);
        assert!((mem.stats().savings_fraction() - 0.5).abs() < 1e-12);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn merge_rejects_different_contents() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let b = mem.map_new_page(VmId(0), Gfn(1), page(2));
        assert_eq!(mem.merge_into(a, b), Err(MergeError::ContentMismatch));
        assert_eq!(mem.allocated_frames(), 2);
    }

    #[test]
    fn merge_rejects_same_and_missing_frames() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        assert_eq!(mem.merge_into(a, a), Err(MergeError::SameFrame(a)));
        assert_eq!(
            mem.merge_into(a, Ppn(999)),
            Err(MergeError::NoSuchFrame(Ppn(999)))
        );
        assert_eq!(
            mem.merge_into(Ppn(999), a),
            Err(MergeError::NoSuchFrame(Ppn(999)))
        );
    }

    #[test]
    fn write_to_shared_frame_breaks_cow() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(7));
        mem.merge_into(a, b).unwrap();
        let outcome = mem.guest_write(VmId(1), Gfn(0), 10, &[99]);
        assert!(outcome.broke_cow());
        let new = outcome.frame();
        assert_ne!(new, a);
        assert_eq!(mem.translate(VmId(1), Gfn(0)), Some(new));
        // Writer sees the new byte; the other VM does not.
        assert_eq!(mem.guest_read(VmId(1), Gfn(0)).unwrap().as_bytes()[10], 99);
        assert_eq!(mem.guest_read(VmId(0), Gfn(0)).unwrap().as_bytes()[10], 7);
        assert_eq!(mem.refcount(a), 1);
        assert_eq!(mem.stats().cow_breaks, 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn write_to_private_frame_is_in_place() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let outcome = mem.guest_write(VmId(0), Gfn(0), 0, &[5, 6]);
        assert_eq!(outcome, WriteOutcome::InPlace(a));
        assert_eq!(mem.guest_read(VmId(0), Gfn(0)).unwrap().as_bytes()[1], 6);
        assert_eq!(mem.stats().cow_breaks, 0);
    }

    #[test]
    fn write_to_sole_mapper_cow_frame_still_copies() {
        // CoW frames are immutable for life (like Linux KSM pages): even
        // the last mapper gets a copy, and the orphaned frame is freed.
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(7));
        mem.cow_protect(a);
        let outcome = mem.guest_write(VmId(0), Gfn(0), 0, &[1]);
        assert!(outcome.broke_cow());
        assert_ne!(outcome.frame(), a);
        assert_eq!(mem.frame_data(a), None, "orphaned CoW frame is freed");
        assert_eq!(mem.allocated_frames(), 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn epochs_distinguish_recycled_frames() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let e1 = mem.frame_epoch(a).unwrap();
        mem.unmap(VmId(0), Gfn(0));
        assert_eq!(mem.frame_epoch(a), None);
        let b = mem.map_new_page(VmId(0), Gfn(1), page(2));
        assert_eq!(a, b, "frame number recycled");
        let e2 = mem.frame_epoch(b).unwrap();
        assert_ne!(e1, e2, "epoch must change across reallocation");
    }

    #[test]
    fn three_way_merge_then_all_write() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(3));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(3));
        let c = mem.map_new_page(VmId(2), Gfn(0), page(3));
        mem.merge_into(a, b).unwrap();
        mem.merge_into(a, c).unwrap();
        assert_eq!(mem.refcount(a), 3);
        assert_eq!(mem.allocated_frames(), 1);
        // Every writer breaks off a private copy; the stable frame is freed
        // once the last mapper leaves.
        assert!(mem.guest_write(VmId(1), Gfn(0), 0, &[1]).broke_cow());
        assert!(mem.guest_write(VmId(2), Gfn(0), 0, &[2]).broke_cow());
        assert!(mem.guest_write(VmId(0), Gfn(0), 0, &[3]).broke_cow());
        assert_eq!(mem.frame_data(a), None);
        assert_eq!(mem.allocated_frames(), 3);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn unmap_frees_last_mapping() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(1));
        mem.merge_into(a, b).unwrap();
        assert_eq!(mem.unmap(VmId(0), Gfn(0)), Some(a));
        assert_eq!(mem.allocated_frames(), 1); // still mapped by vm1
        assert_eq!(mem.unmap(VmId(1), Gfn(0)), Some(a));
        assert_eq!(mem.allocated_frames(), 0);
        assert_eq!(mem.unmap(VmId(1), Gfn(0)), None);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn freed_frames_are_recycled() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(1));
        mem.unmap(VmId(0), Gfn(0));
        let b = mem.map_new_page(VmId(0), Gfn(1), page(2));
        assert_eq!(a, b, "freed frame should be recycled");
    }

    #[test]
    fn reverse_map_tracks_mappings() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(5), page(9));
        let b = mem.map_new_page(VmId(3), Gfn(8), page(9));
        mem.merge_into(a, b).unwrap();
        let rmap = mem.reverse_map(a);
        assert!(rmap.contains(&(VmId(0), Gfn(5))));
        assert!(rmap.contains(&(VmId(3), Gfn(8))));
        assert_eq!(mem.reverse_map(Ppn(12345)), &[]);
    }

    #[test]
    fn stats_track_savings() {
        let mut mem = HostMemory::new();
        let keep = mem.map_new_page(VmId(0), Gfn(0), page(0));
        for vm in 1..10u32 {
            let p = mem.map_new_page(VmId(vm), Gfn(0), page(0));
            mem.merge_into(keep, p).unwrap();
        }
        let s = mem.stats();
        assert_eq!(s.allocated_frames, 1);
        assert_eq!(s.mapped_guest_pages, 10);
        assert_eq!(s.merges, 9);
        assert!((s.savings_fraction() - 0.9).abs() < 1e-12);
    }
}
