//! The full-system simulator: 10 out-of-order cores with private L1/L2, a
//! shared L3 over a snoopy MESI bus, memory controllers with DDR DRAM
//! behind them, one VM pinned per core running a TailBench-like
//! application, and — depending on configuration — the KSM daemon
//! migrating across cores or the PageForge engine in the memory controller
//! (§5 of the paper).
//!
//! The simulation is event-driven and deterministic. Each VM's queries are
//! an open-loop arrival process; query execution drives synthetic line
//! touches through the cache hierarchy and DRAM, so interference between
//! the applications and the deduplication machinery (core theft, cache
//! pollution, DRAM bank/bus contention) emerges from the model rather than
//! being asserted:
//!
//! * **KSM** runs as a kernel task on a core (round-robin migration, as the
//!   Linux scheduler does): its page comparisons and jhash computations
//!   consume core cycles and stream pages through that core's caches.
//! * **PageForge** runs *in* the memory controller: its line reads probe
//!   the on-chip network first and fall through to DRAM, never touching
//!   the caches; only the tiny Scan Table refill/poll work is charged to a
//!   core.
//!
//! Time scaling (see `pageforge-workloads`): every interval — query
//! lengths, `sleep_millisecs`, `pages_to_scan`, warm-up — is scaled by the
//! same factor, preserving utilization and queueing shape.
//!
//! | module | paper anchor | contents |
//! |--------|--------------|----------|
//! | [`config`] | Table 2, §5.3 | [`SimConfig`]: machine + dedup-mode knobs |
//! | [`system`] | §5–§6 | the event loop, dispatcher, KSM/PageForge scheduling |
//! | [`fabric`] | §3.2, Figure 5 | [`SimFabric`]: PageForge's cache-probe/DRAM path |
//! | [`result`] | Figures 9–11, Table 4 | [`SimResult`]: latency/bandwidth/merge outcomes |
//! | [`shard`] | §4.1, Figure 5 | domain plan, barrier clock, deterministic worker pool |
//! | [`spec`] | DESIGN.md §8 | speculative epochs: mapping view, dirty tracking, rollback metrics |
//!
//! [`System::run_observed`](system::System::run_observed) additionally
//! returns the unified metric snapshot described in OBSERVABILITY.md.
//!
//! # Examples
//!
//! ```no_run
//! use pageforge_sim::{DedupMode, SimConfig, System};
//!
//! let cfg = SimConfig::quick("silo", DedupMode::None, 42);
//! let result = System::new(cfg).run();
//! println!("mean sojourn latency: {:.0} cycles", result.mean_sojourn());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod fabric;
pub mod result;
pub mod shard;
pub mod spec;
pub mod system;

pub use config::{DedupMode, SimConfig};
pub use fabric::SimFabric;
pub use result::{DedupSummary, DegradedSummary, SimResult};
pub use shard::{ordered_map, DomainPlan, ShardMetrics, ShardTally, EPOCH_CYCLES};
pub use system::System;
