//! The PageForge hardware engine and its OS driver — the paper's primary
//! contribution.
//!
//! PageForge (Skarlatos, Kim, Torrellas; MICRO-50 2017) moves the expensive
//! inner operations of same-page merging into the memory controller:
//!
//! * **pairwise page comparison** — a lockstep, line-by-line comparator FSM
//!   ([`engine`]);
//! * **hash-key generation** — repurposing the DIMM's (72,64) SECDED ECC
//!   codes: the low 8 ECC bits of a few fixed lines, concatenated, form a
//!   32-bit key assembled *in the background* while comparisons stream the
//!   candidate page through the controller ([`pageforge_ecc`]);
//! * **ordered traversal** of a software-chosen page set — the *Scan Table*
//!   ([`scan_table`]), 31 Other Pages entries with `Less`/`More` indices
//!   plus one candidate (PFE) entry, ≈260 B of state.
//!
//! The OS keeps the merging *policy* (which pages to compare, in what
//! order) and drives the hardware through the five-call interface of the
//! paper's Table 1. [`driver`] implements the KSM algorithm on top of that
//! interface, exactly as §3.4 describes; [`power`] reproduces the Table 5
//! area/power accounting.
//!
//! # Examples
//!
//! ```
//! use pageforge_core::{PageForge, PageForgeConfig};
//! use pageforge_core::fabric::FlatFabric;
//! use pageforge_types::{Gfn, PageData, VmId};
//! use pageforge_vm::HostMemory;
//!
//! // Two VMs with one identical page each.
//! let mut mem = HostMemory::new();
//! let data = PageData::from_fn(|i| (i * 7) as u8);
//! mem.map_new_page(VmId(0), Gfn(0), data.clone());
//! mem.map_new_page(VmId(1), Gfn(0), data);
//!
//! let hints = vec![(VmId(0), Gfn(0)), (VmId(1), Gfn(0))];
//! let mut pf = PageForge::new(PageForgeConfig::default(), hints);
//! let mut fabric = FlatFabric::all_dram(80); // stand-in memory system
//! pf.run_to_steady_state(&mut mem, &mut fabric, 8);
//! assert_eq!(mem.allocated_frames(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod engine;
pub mod fabric;
pub mod power;
pub mod scan_table;

pub use driver::{IntervalReport, PageForge, PageForgeConfig, PageForgeStats};
pub use engine::{EngineConfig, EngineError, EngineRun, EngineStats, PageForgeEngine};
pub use fabric::{FabricRead, FlatFabric, MemoryFabric};
pub use power::{AreaPower, PowerModel, TechNode};
pub use scan_table::{OtherPage, PfeEntry, PfeInfo, ScanTable, DEFAULT_OTHER_PAGES, INVALID_INDEX};
