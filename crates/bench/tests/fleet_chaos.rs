//! The chaos campaign's determinism and no-op contracts, end to end.
//!
//! `results/fleet_chaos.json` is a pure function of `(config, seed)`:
//! `--jobs` and `--shards` may only change wall-clock, never bytes. And
//! `--fleet-faults` obeys the same empty-plan rule as `--faults`: an
//! empty plan is collapsed before any unit is built, so its run is
//! byte-identical to a run with no flag at all.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use pageforge_bench::{suite, BenchArgs};
use pageforge_faults::{FleetFaultPlan, PLAN_VERSION};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pageforge-fleet-chaos-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the smoke-scale experiments in `only` at one `--jobs`/`--shards`
/// level and returns every JSON artifact produced, keyed by file name.
fn run_experiments(
    only: &[&str],
    jobs: usize,
    shards: usize,
    fleet_faults: Option<&Path>,
    tag: &str,
) -> BTreeMap<String, Vec<u8>> {
    let out_dir = temp_dir(tag);
    let args = BenchArgs {
        smoke: true,
        jobs,
        shards,
        only: only.iter().map(|s| s.to_string()).collect(),
        out_dir: out_dir.clone(),
        fleet_faults: fleet_faults.map(Path::to_path_buf),
        ..BenchArgs::default()
    };
    let outcome = suite::run_suite(&args).expect("suite runs");
    for (stem, table) in &outcome.tables {
        table.write_json(&out_dir, stem);
    }
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(&out_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            files.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&out_dir);
    files
}

fn assert_identical(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>, what: &str) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: file sets differ"
    );
    for (name, bytes) in a {
        assert_eq!(bytes, &b[name], "{what}: {name} bytes differ");
    }
}

#[test]
fn chaos_campaign_is_byte_identical_across_jobs_and_shard_levels() {
    let reference = run_experiments(&["fleet_chaos"], 2, 1, None, "c-j2s1");
    assert!(
        reference.contains_key("fleet_chaos.json"),
        "the chaos table is part of the compared artifact set: {:?}",
        reference.keys()
    );
    let jobs4 = run_experiments(&["fleet_chaos"], 4, 1, None, "c-j4s1");
    let shards4 = run_experiments(&["fleet_chaos"], 2, 4, None, "c-j2s4");
    assert_identical(&reference, &jobs4, "chaos jobs 2 vs 4");
    assert_identical(&reference, &shards4, "chaos shards 1 vs 4");
}

#[test]
fn fleet_fault_plans_are_deterministic_and_empty_plans_are_no_ops() {
    let dir = temp_dir("plans");
    // A generated plan sized to the smoke fleet (4 hosts, 160 ticks).
    let plan_path = dir.join("chaos.json");
    let plan = FleetFaultPlan::generate(13, 4, 160, 2, 2, 2, 2);
    assert!(!plan.is_empty(), "the generated plan must schedule faults");
    plan.write_file(&plan_path).unwrap();
    let one = run_experiments(&["fleet"], 2, 1, Some(&plan_path), "p-s1");
    let four = run_experiments(&["fleet"], 2, 4, Some(&plan_path), "p-s4");
    assert_identical(&one, &four, "planned fleet shards 1 vs 4");

    // The empty-plan rule: `--fleet-faults empty.json` must produce the
    // bytes of a run with no flag at all — and a non-empty plan must not
    // change the artifact set (the `chaos` section rides inside).
    let empty_path = dir.join("empty.json");
    std::fs::write(
        &empty_path,
        format!("{{\"version\":{PLAN_VERSION},\"seed\":0,\"events\":[]}}"),
    )
    .unwrap();
    let unflagged = run_experiments(&["fleet"], 2, 1, None, "p-none");
    let empty = run_experiments(&["fleet"], 2, 1, Some(&empty_path), "p-empty");
    assert_identical(&unflagged, &empty, "empty plan vs no flag");
    assert_eq!(
        unflagged.keys().collect::<Vec<_>>(),
        one.keys().collect::<Vec<_>>(),
        "fleet fault plans may not change the artifact set"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
