//! Fault plans: deterministic, seed-derived schedules of fault events.
//!
//! A [`FaultPlan`] is generated once from a seed (all randomness is spent
//! here), serialized to JSON for archival/CI, and then *replayed* by the
//! [`FaultInjector`](crate::inject::FaultInjector) against the engine's own
//! cycle stream — replay itself is pure.

use pageforge_types::json::{obj, FromJson, ToJson, Value};
use pageforge_types::Cycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The fault-plan JSON schema version this build reads and writes
/// (engine-level [`FaultPlan`]s and fleet-level
/// [`FleetFaultPlan`](crate::FleetFaultPlan)s alike). Plans without a
/// `version` field are treated as version 1 — the schema predates the
/// field — while a *different* version is rejected by `read_file` with
/// a message naming this constant instead of an opaque shape error.
pub const PLAN_VERSION: u32 = 1;

/// Validates a parsed plan's `version` field against [`PLAN_VERSION`].
/// Missing field → version 1 (accepted); mismatched field → an error
/// naming both versions, prefixed with `path` for context.
pub(crate) fn check_version(value: &Value, path: &std::path::Path) -> Result<(), String> {
    let Some(v) = value.get("version") else {
        return Ok(());
    };
    let got = u64::from_json(v)
        .ok_or_else(|| format!("{}: `version` must be an unsigned integer", path.display()))?;
    if got != u64::from(PLAN_VERSION) {
        return Err(format!(
            "{}: plan version {got} is not supported; this build reads version {PLAN_VERSION}",
            path.display()
        ));
    }
    Ok(())
}

/// One scheduled fault. It *arms* at `at_cycle` and fires at the first
/// matching injection point (line fetch, key observation, batch start)
/// the hardware reaches at or after that cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault arms.
    pub at_cycle: Cycle,
    /// What to corrupt.
    pub kind: FaultKind,
}

/// The fault classes of the campaign (DESIGN.md "Fault model").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip `bits` (positions `0..64`) of data word `word` in the next
    /// fetched candidate line. One bit is corrected by SECDED; two bits
    /// are detected as uncorrectable.
    DataFlip {
        /// Target word within the 64-byte line (`0..8`).
        word: u8,
        /// Bit positions to flip within the word.
        bits: Vec<u8>,
    },
    /// Flip `bits` (positions `0..8`) of the stored ECC byte of `word`:
    /// one flip exercises the corrected-check arm, two the double-error
    /// detection arm.
    CheckFlip {
        /// Target word within the line.
        word: u8,
        /// Bit positions to flip within the 8-bit ECC code.
        bits: Vec<u8>,
    },
    /// Flip data bits 0, 1, and 2 of `word`: their syndrome columns
    /// (3, 5, 6) XOR to zero while the overall parity goes odd, so SECDED
    /// "corrects" the parity bit and silently accepts three wrong data
    /// bits — the miscorrect arm beyond the SECDED guarantee.
    AliasedTriple {
        /// Target word within the line.
        word: u8,
    },
    /// XOR the next snatched minikey with `xor`: a stale/corrupted ECC
    /// hint feeding the hash key (§3.3's "keys are only hints").
    KeyFault {
        /// Non-zero XOR mask applied to the 8-bit minikey.
        xor: u8,
    },
    /// Force the next hash-key comparison to report "unchanged": an
    /// adversarially colliding key. Safety demands the subsequent full
    /// comparison (and `merge_into`'s content check) still prevents any
    /// wrong merge.
    KeyCollision,
    /// XOR a Scan Table entry's fields before the next batch: a corrupted
    /// PPN points the comparator at the wrong (possibly nonexistent)
    /// frame; corrupted Less/More pointers derail the walk.
    TableCorrupt {
        /// Other Pages entry index to corrupt.
        entry: u8,
        /// XOR applied to the entry's PPN.
        ppn_xor: u64,
        /// XOR applied to the Less pointer.
        less_xor: u8,
        /// XOR applied to the More pointer.
        more_xor: u8,
    },
}

impl FaultKind {
    /// Short class tag (JSON discriminant and metric label).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::DataFlip { .. } => "data",
            FaultKind::CheckFlip { .. } => "check",
            FaultKind::AliasedTriple { .. } => "alias3",
            FaultKind::KeyFault { .. } => "key",
            FaultKind::KeyCollision => "collide",
            FaultKind::TableCorrupt { .. } => "table",
        }
    }
}

/// A window of cycles during which the engine is unavailable (stalled):
/// `from <= now < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// First stalled cycle.
    pub from: Cycle,
    /// First cycle after the stall.
    pub until: Cycle,
}

impl StallWindow {
    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Cycle) -> bool {
        self.from <= now && now < self.until
    }
}

/// A complete fault schedule: the seed it derives from, the events sorted
/// by arm cycle, and the engine stall windows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed the plan was generated from (informational once serialized).
    pub seed: u64,
    /// Fault events, sorted by [`FaultEvent::at_cycle`].
    pub events: Vec<FaultEvent>,
    /// Engine unavailability windows.
    pub stalls: Vec<StallWindow>,
}

impl FaultPlan {
    /// The no-fault plan: every injector hook becomes a no-op.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.stalls.is_empty()
    }

    /// Generates a mixed-class plan: `events` faults spread uniformly over
    /// `[0, horizon)` plus `stalls` stall windows of `stall_len` cycles.
    /// All randomness is spent here; the returned plan replays purely.
    ///
    /// The class mix covers every decode arm: singles (corrected), doubles
    /// (detected), crafted triples (miscorrected), check-bit flips, key
    /// hints, adversarial collisions, and Scan Table corruption.
    ///
    /// ```
    /// use pageforge_faults::FaultPlan;
    /// let a = FaultPlan::generate(7, 1_000_000, 32, 2, 50_000);
    /// let b = FaultPlan::generate(7, 1_000_000, 32, 2, 50_000);
    /// assert_eq!(a, b); // fully deterministic
    /// assert_eq!(a.events.len(), 32);
    /// ```
    pub fn generate(
        seed: u64,
        horizon: Cycle,
        events: usize,
        stalls: usize,
        stall_len: Cycle,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA017);
        let horizon = horizon.max(1);
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let at_cycle = rng.gen_range(0..horizon);
            let word = rng.gen_range(0u8..8);
            let kind = match rng.gen_range(0u32..100) {
                // Single data-bit flip: the corrected arm.
                0..=29 => FaultKind::DataFlip {
                    word,
                    bits: vec![rng.gen_range(0u8..64)],
                },
                // Double data-bit flip: the detected-uncorrectable arm.
                30..=44 => {
                    let a = rng.gen_range(0u8..64);
                    let b = (a + 1 + rng.gen_range(0u8..63)) % 64;
                    FaultKind::DataFlip {
                        word,
                        bits: vec![a, b],
                    }
                }
                // Single check-bit flip: data intact, code corrected.
                45..=54 => FaultKind::CheckFlip {
                    word,
                    bits: vec![rng.gen_range(0u8..8)],
                },
                // Double check-bit flip: detected.
                55..=64 => {
                    let a = rng.gen_range(0u8..8);
                    let b = (a + 1 + rng.gen_range(0u8..7)) % 8;
                    FaultKind::CheckFlip {
                        word,
                        bits: vec![a, b],
                    }
                }
                // Crafted 3-bit alias: the miscorrect arm.
                65..=69 => FaultKind::AliasedTriple { word },
                // Stale minikey hint.
                70..=79 => FaultKind::KeyFault {
                    xor: rng.gen_range(1u8..255),
                },
                // Adversarially colliding hash key.
                80..=89 => FaultKind::KeyCollision,
                // Scan Table entry corruption.
                _ => FaultKind::TableCorrupt {
                    entry: rng.gen_range(0u8..31),
                    ppn_xor: 1u64 << rng.gen_range(0u32..40),
                    less_xor: rng.gen_range(0u8..2),
                    more_xor: rng.gen_range(0u8..2),
                },
            };
            out.push(FaultEvent { at_cycle, kind });
        }
        out.sort_by_key(|e| e.at_cycle);
        let stalls = (0..stalls)
            .map(|_| {
                let from = rng.gen_range(0..horizon);
                StallWindow {
                    from,
                    until: from + stall_len.max(1),
                }
            })
            .collect();
        FaultPlan {
            seed,
            events: out,
            stalls,
        }
    }

    /// Reads a plan from a JSON file. A plan whose `version` field names
    /// a schema this build does not read fails with a message naming the
    /// supported version ([`PLAN_VERSION`]); a missing `version` is
    /// accepted as version 1.
    pub fn read_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value =
            pageforge_types::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        check_version(&value, path)?;
        Self::from_json(&value).ok_or_else(|| format!("{}: not a fault plan", path.display()))
    }

    /// Writes the plan as compact JSON.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string_compact())
    }
}

pub(crate) fn u64_field(value: &Value, key: &str) -> Option<u64> {
    u64::from_json(value.get(key)?)
}

pub(crate) fn u8_field(value: &Value, key: &str) -> Option<u8> {
    u8::try_from(u64_field(value, key)?).ok()
}

/// `from_json` arm of the version check: missing → version 1, present
/// but different → reject (callers going through `read_file` get the
/// nicer named-version error first).
pub(crate) fn version_accepted(value: &Value) -> bool {
    match value.get("version") {
        None => true,
        Some(v) => u64::from_json(v) == Some(u64::from(PLAN_VERSION)),
    }
}

fn bits_field(value: &Value) -> Option<Vec<u8>> {
    let Value::Arr(items) = value else {
        return None;
    };
    items
        .iter()
        .map(|v| u64::from_json(v).and_then(|n| u8::try_from(n).ok()))
        .collect()
}

impl ToJson for FaultEvent {
    fn to_json(&self) -> Value {
        let mut fields: Vec<(&'static str, Value)> = vec![
            ("at", self.at_cycle.to_json()),
            ("kind", self.kind.tag().to_owned().to_json()),
        ];
        match &self.kind {
            FaultKind::DataFlip { word, bits } | FaultKind::CheckFlip { word, bits } => {
                fields.push(("word", u64::from(*word).to_json()));
                fields.push((
                    "bits",
                    Value::Arr(bits.iter().map(|b| u64::from(*b).to_json()).collect()),
                ));
            }
            FaultKind::AliasedTriple { word } => {
                fields.push(("word", u64::from(*word).to_json()));
            }
            FaultKind::KeyFault { xor } => fields.push(("xor", u64::from(*xor).to_json())),
            FaultKind::KeyCollision => {}
            FaultKind::TableCorrupt {
                entry,
                ppn_xor,
                less_xor,
                more_xor,
            } => {
                fields.push(("entry", u64::from(*entry).to_json()));
                fields.push(("ppn_xor", ppn_xor.to_json()));
                fields.push(("less_xor", u64::from(*less_xor).to_json()));
                fields.push(("more_xor", u64::from(*more_xor).to_json()));
            }
        }
        obj(fields)
    }
}

impl FromJson for FaultEvent {
    fn from_json(value: &Value) -> Option<Self> {
        let at_cycle = u64_field(value, "at")?;
        let kind = match String::from_json(value.get("kind")?)?.as_str() {
            "data" => FaultKind::DataFlip {
                word: u8_field(value, "word")?,
                bits: bits_field(value.get("bits")?)?,
            },
            "check" => FaultKind::CheckFlip {
                word: u8_field(value, "word")?,
                bits: bits_field(value.get("bits")?)?,
            },
            "alias3" => FaultKind::AliasedTriple {
                word: u8_field(value, "word")?,
            },
            "key" => FaultKind::KeyFault {
                xor: u8_field(value, "xor")?,
            },
            "collide" => FaultKind::KeyCollision,
            "table" => FaultKind::TableCorrupt {
                entry: u8_field(value, "entry")?,
                ppn_xor: u64_field(value, "ppn_xor")?,
                less_xor: u8_field(value, "less_xor")?,
                more_xor: u8_field(value, "more_xor")?,
            },
            _ => return None,
        };
        Some(FaultEvent { at_cycle, kind })
    }
}

impl ToJson for StallWindow {
    fn to_json(&self) -> Value {
        obj([
            ("from", self.from.to_json()),
            ("until", self.until.to_json()),
        ])
    }
}

impl FromJson for StallWindow {
    fn from_json(value: &Value) -> Option<Self> {
        Some(StallWindow {
            from: u64_field(value, "from")?,
            until: u64_field(value, "until")?,
        })
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Value {
        obj([
            ("version", u64::from(PLAN_VERSION).to_json()),
            ("seed", self.seed.to_json()),
            ("events", self.events.to_json()),
            ("stalls", self.stalls.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(value: &Value) -> Option<Self> {
        if !version_accepted(value) {
            return None;
        }
        Some(FaultPlan {
            seed: u64_field(value, "seed")?,
            events: Vec::from_json(value.get("events")?)?,
            stalls: Vec::from_json(value.get("stalls")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert!(!FaultPlan::generate(1, 1000, 4, 0, 0).is_empty());
        assert!(!FaultPlan::generate(1, 1000, 0, 1, 10).is_empty());
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let a = FaultPlan::generate(42, 5_000_000, 64, 3, 10_000);
        let b = FaultPlan::generate(42, 5_000_000, 64, 3, 10_000);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert_eq!(a.events.len(), 64);
        assert_eq!(a.stalls.len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 1_000_000, 32, 1, 100);
        let b = FaultPlan::generate(2, 1_000_000, 32, 1, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn generation_covers_all_classes() {
        let plan = FaultPlan::generate(3, 10_000_000, 400, 2, 100);
        for tag in ["data", "check", "alias3", "key", "collide", "table"] {
            assert!(
                plan.events.iter().any(|e| e.kind.tag() == tag),
                "missing class {tag}"
            );
        }
    }

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan::generate(9, 2_000_000, 48, 2, 5_000);
        let text = plan.to_json().to_string_compact();
        let parsed = FaultPlan::from_json(&pageforge_types::json::parse(&text).unwrap()).unwrap();
        assert_eq!(plan, parsed);
    }

    #[test]
    fn json_round_trip_empty() {
        let plan = FaultPlan::empty();
        let text = plan.to_json().to_string_compact();
        let parsed = FaultPlan::from_json(&pageforge_types::json::parse(&text).unwrap()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pageforge-faults-test");
        let path = dir.join("plan.json");
        let plan = FaultPlan::generate(11, 1_000_000, 16, 1, 1_000);
        plan.write_file(&path).unwrap();
        assert_eq!(FaultPlan::read_file(&path).unwrap(), plan);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serialized_plans_carry_the_schema_version() {
        let text = FaultPlan::empty().to_json().to_string_compact();
        assert!(text.contains("\"version\":1"), "{text}");
    }

    #[test]
    fn unversioned_plans_parse_as_version_one() {
        // The CI empty-plan fixture predates the `version` field and
        // must keep parsing forever.
        let value = pageforge_types::json::parse(r#"{"seed":0,"events":[],"stalls":[]}"#).unwrap();
        assert!(FaultPlan::from_json(&value).unwrap().is_empty());
    }

    #[test]
    fn future_versions_are_rejected_by_name() {
        let dir = std::env::temp_dir().join("pageforge-faults-version-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        std::fs::write(&path, r#"{"version":9,"seed":0,"events":[],"stalls":[]}"#).unwrap();
        let err = FaultPlan::read_file(&path).unwrap_err();
        assert!(err.contains("plan version 9 is not supported"), "{err}");
        assert!(err.contains("reads version 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_window_containment() {
        let w = StallWindow {
            from: 10,
            until: 20,
        };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
    }
}
