//! Fleet-scale deduplication control plane.
//!
//! Everything else in this repository drives **one** host. This crate
//! runs *N* of them: each [`Host`] owns the same substrate a single-host
//! simulation wraps (guest memory, a PageForge driver/engine pair, a
//! memory fabric), and a [`ControlPlane`] schedules a seeded serverless
//! churn workload over the fleet — thousands of short-lived micro-VM
//! instances ([`pageforge_workloads::serverless`]) arriving onto the
//! least-loaded host, departing when their lifetime expires, and
//! live-migrating under a periodic rebalancing policy. Scan work flows
//! through each host's **bounded queue**; when a host's merge pipeline
//! falls behind, the queue rejects and the control plane parks the work
//! under a deterministic lease with exponential-backoff retries.
//!
//! Under a [`pageforge_faults::FleetFaultPlan`] the plane also runs a
//! chaos-and-recovery loop: a per-tick heartbeat delivers host crashes,
//! gray slowdowns, engine wedges, and armed migration failures;
//! unhealthy hosts are quarantined (no admissions or rescans, due
//! leases re-parked); crashed hosts' micro-VMs evacuate over the
//! live-migration path in `(crash_tick, vm)` order; and a placement
//! audit enforces the zero-loss invariant every tick. The summary lands
//! in [`result::FleetChaos`].
//!
//! The run is a pure function of its [`FleetConfig`] (seed included):
//! byte-identical across `--jobs` and `--shards`, with or without a
//! fault plan. DESIGN.md §7 and §10 give the architecture and the
//! determinism argument; OBSERVABILITY.md documents the `fleet.*`
//! metrics and the `fleet` trace events; EXPERIMENTS.md covers the
//! serverless-churn and fleet-chaos experiments built on top.
//!
//! ```
//! use pageforge_fleet::{ControlPlane, FleetConfig};
//!
//! let mut cfg = FleetConfig::smoke(42);
//! cfg.ticks = 40; // keep the doctest fast
//! let (result, snapshot) = ControlPlane::new(cfg.clone()).run(2);
//! assert!(result.arrivals > 0);
//! assert_eq!(snapshot.gauge("fleet.hosts"), Some(4.0));
//! // Same config, different worker count: same bytes.
//! let (again, _) = ControlPlane::new(cfg).run(4);
//! assert_eq!(result, again);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chaos;
pub mod config;
pub mod host;
pub mod plane;
pub mod result;

pub use config::FleetConfig;
pub use host::{Host, HostTickReport, ScanJob};
pub use plane::{lease_backoff, ControlPlane};
pub use result::{FleetChaos, FleetDegraded, FleetResult};
