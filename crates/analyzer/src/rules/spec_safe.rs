//! `SPEC-SAFE` — the speculation-readiness audit for the sharded
//! executor.
//!
//! The ROADMAP's next perf lever is speculative cross-domain execution:
//! domain workers run ahead optimistically and roll back on
//! cross-domain conflict. That is only sound if the complete set of
//! shared-mutable state a worker can touch is known — rollback cannot
//! undo a write the conflict detector never saw. This rule pins that
//! precondition in CI: every *domain worker closure* (the closure
//! argument of any `ordered_map(..)` call, plus the `spawn` closures
//! inside `sim::shard` itself) is audited, and every write to shared
//! state reachable from it — a mutex acquisition, an atomic RMW/store,
//! a channel send, directly or through any resolved callee — is a
//! finding.
//!
//! The findings that remain at HEAD, carried by justified
//! `analyzer.toml` entries, *are* the sanctioned cross-domain write
//! surface: if the surface grows, a new finding fails CI; if it
//! shrinks, the stale allow entry fails CI. The speculative-execution
//! PR can cite this rule as its machine-checked precondition.
//!
//! Domain-local interior mutability (`RefCell`, `thread_local!`) is
//! deliberately out of scope: it cannot be observed across workers, so
//! it cannot order results across `--shards` levels.

use std::collections::BTreeSet;

use crate::dataflow::{closure_arg, MarkerKind};
use crate::findings::Finding;
use crate::Workspace;

const HINT: &str = "domain workers may touch only domain-local state or the staged ShardTally / \
     barrier-fold path; route the write through the fold, or allowlist it with a \
     proof that it cannot reorder results across --shards (see ANALYSIS.md)";

/// Runs `SPEC-SAFE` over every domain worker closure in the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let graph = &ws.graph;
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();

    for fid in 0..graph.fns.len() {
        let f = &graph.fns[fid];
        let toks = ws.toks(&f.path);
        for (si, site) in graph.sites[fid].iter().enumerate() {
            let is_worker_call = site.name == "ordered_map"
                || (f.path == "crates/sim/src/shard.rs" && site.method && site.name == "spawn");
            if !is_worker_call {
                continue;
            }
            let Some(closure) = closure_arg(toks, site.tok) else {
                continue;
            };
            let (cs, ce) = closure.body;

            // Direct shared-mutable writes inside the closure body.
            for m in &ws.markers[fid] {
                if m.tok < cs || m.tok >= ce {
                    continue;
                }
                let (item, what) = match m.kind {
                    MarkerKind::Lock => (
                        format!("lock:{}", m.detail),
                        format!("acquires mutex class `{}`", m.detail),
                    ),
                    MarkerKind::Atomic => (
                        m.detail.clone(),
                        format!("performs atomic `{}` on shared state", m.detail),
                    ),
                    MarkerKind::Send => ("send".to_owned(), "sends on a channel".to_owned()),
                };
                if !seen.insert((f.path.clone(), m.line, item.clone())) {
                    continue;
                }
                out.push(Finding {
                    rule: "SPEC-SAFE",
                    path: f.path.clone(),
                    line: m.line,
                    item,
                    message: format!("domain worker closure {what}"),
                    hint: HINT,
                });
            }

            // Calls out of the closure that transitively reach one.
            for &(rsi, callee) in &graph.resolved[fid] {
                let rsite = &graph.sites[fid][rsi];
                if rsite.tok < cs || rsite.tok >= ce || !ws.marker_reach[callee] {
                    continue;
                }
                let item = format!("via:{}", rsite.name);
                if !seen.insert((f.path.clone(), rsite.line, item.clone())) {
                    continue;
                }
                let (where_str, what) = describe_reach(ws, callee);
                out.push(Finding {
                    rule: "SPEC-SAFE",
                    path: f.path.clone(),
                    line: rsite.line,
                    item,
                    message: format!(
                        "domain worker closure calls `{}`, which {what} ({where_str})",
                        rsite.name
                    ),
                    hint: HINT,
                });
            }
            let _ = si;
        }
    }
}

/// Deterministic shortest chain from `callee` to a marker-bearing
/// function, with a description of the first marker there.
fn describe_reach(ws: &Workspace, callee: usize) -> (String, String) {
    let graph = &ws.graph;
    let path = graph
        .path_to(callee, |i| !ws.markers[i].is_empty())
        .unwrap_or_else(|| vec![callee]);
    let terminal = *path.last().unwrap_or(&callee);
    let chain = path
        .iter()
        .map(|&i| graph.fns[i].qual.as_str())
        .collect::<Vec<_>>()
        .join(" -> ");
    let what = match ws.markers[terminal].first() {
        Some(m) => match m.kind {
            MarkerKind::Lock => format!("acquires mutex class `{}`", m.detail),
            MarkerKind::Atomic => format!("performs atomic `{}`", m.detail),
            MarkerKind::Send => "sends on a channel".to_owned(),
        },
        None => "reaches shared-mutable state".to_owned(),
    };
    (chain, what)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_tests};

    fn findings(files: &[(&str, &str)]) -> Vec<(String, String)> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(rel, src)| ((*rel).to_owned(), strip_tests(&lex(src))))
                .collect(),
        );
        let mut out = Vec::new();
        run(&ws, &mut out);
        out.into_iter().map(|f| (f.path, f.item)).collect()
    }

    #[test]
    fn direct_atomic_lock_and_send_escapes_are_flagged() {
        let src = "fn run(n: usize) {
            ordered_map(threads, n, |i| {
                cursor.fetch_add(1, ord);
                *slots[i].lock().unwrap() = i;
                tx.send(i);
                local[i] += 1;
            });
        }";
        let out = findings(&[("crates/sim/src/system.rs", src)]);
        let items: Vec<&str> = out.iter().map(|(_, i)| i.as_str()).collect();
        assert_eq!(items, ["fetch_add", "lock:slots", "send"]);
    }

    #[test]
    fn transitive_escape_through_a_callee_is_flagged_with_via() {
        let src = "
            fn memo_get() -> u64 { MEMO.lock().unwrap().len() }
            fn synth(i: usize) -> u64 { memo_get() + i as u64 }
            fn run(n: usize) { ordered_map(threads, n, |i| synth(i)); }";
        let out = findings(&[("crates/sim/src/system.rs", src)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, "via:synth");
    }

    #[test]
    fn spawn_closures_in_shard_are_audited() {
        let src = "fn pool(scope: &Scope) {
            scope.spawn(move || loop { cursor.fetch_add(1, ord); });
        }";
        let out = findings(&[("crates/sim/src/shard.rs", src)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, "fetch_add");
    }

    #[test]
    fn domain_local_work_is_clean_and_spawn_elsewhere_is_out_of_scope() {
        let src = "fn run(n: usize) {
            ordered_map(threads, n, |i| pure(i));
            scope.spawn(move || other.fetch_add(1, ord));
        }
        fn pure(i: usize) -> usize { i * 2 }";
        assert!(findings(&[("crates/bench/src/scheduler.rs", src)]).is_empty());
    }
}
