//! A faithful reimplementation of RedHat's Kernel Same-page Merging (KSM),
//! the software baseline that PageForge is evaluated against.
//!
//! KSM (§2.1 of the paper; `mm/ksm.c` in Linux) continuously scans pages
//! that VMs registered with `madvise(MADV_MERGEABLE)`, discovers pages with
//! identical contents, and merges them into single CoW-protected frames.
//! The implementation here follows the paper's Algorithm 1, with the same
//! data structures and tuning knobs:
//!
//! * [`rbtree`] — an arena-based red-black tree with the Linux rbtree's
//!   caller-driven walk API (full CLRS insert/delete rebalancing);
//! * [`tree`] — the content-indexed *stable* and *unstable* page trees,
//!   including stale-node pruning;
//! * [`jhash`] — Bob Jenkins' `jhash2` and KSM's 1 KB page checksum;
//! * [`algorithm`] — the scanning daemon: passes, candidate processing,
//!   merging, and the `pages_to_scan` / `sleep_millisecs` knobs;
//! * [`cost`] — work metering and the cycle cost model used to charge KSM
//!   to a simulated core (Table 4).
//!
//! # Examples
//!
//! ```
//! use pageforge_ksm::{Ksm, KsmConfig};
//! use pageforge_types::{Gfn, PageData, VmId};
//! use pageforge_vm::HostMemory;
//!
//! // Two VMs, one identical page each.
//! let mut mem = HostMemory::new();
//! let data = PageData::from_fn(|i| i as u8);
//! mem.map_new_page(VmId(0), Gfn(0), data.clone());
//! mem.map_new_page(VmId(1), Gfn(0), data);
//!
//! let hints = vec![(VmId(0), Gfn(0)), (VmId(1), Gfn(0))];
//! let mut ksm = Ksm::new(KsmConfig::default(), hints);
//! ksm.run_to_steady_state(&mut mem, 8);
//! assert_eq!(mem.allocated_frames(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod cost;
pub mod jhash;
pub mod madvise;
pub mod rbtree;
pub mod tree;
pub mod uksm;

pub use algorithm::{BatchReport, CandidateOutcome, Ksm, KsmConfig, KsmStats};
pub use cost::{CostModel, KsmCycles, KsmWork};
pub use jhash::{jhash2, page_checksum};
pub use madvise::MergeRegistry;
pub use tree::{PageRef, PageTree, SearchInsert, TreeKind};
pub use uksm::{Uksm, UksmConfig};
