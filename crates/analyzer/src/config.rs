//! `analyzer.toml` — the reviewed, justification-carrying allowlist.
//!
//! The file is a sequence of `[[allow]]` tables in a small TOML subset
//! (string values only), parsed here without a TOML dependency:
//!
//! ```toml
//! [[allow]]
//! rule = "DET-TIME"
//! path = "crates/bench/src/scheduler.rs"
//! item = "Instant"   # optional: restrict to one matched item
//! reason = "wall-clock timing lands only in results/meta (not results/*.json)"
//! ```
//!
//! Every entry must carry a non-empty `reason`, and every entry must
//! match at least one live finding — stale entries fail the run, so the
//! allowlist can never drift from the code it excuses.

/// One reviewed exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id this entry suppresses (e.g. `PANIC-PATH`).
    pub rule: String,
    /// Workspace-relative path the findings live in.
    pub path: String,
    /// Optional item restriction (e.g. `unwrap`, `HashMap`); `None`
    /// suppresses every item of `rule` in `path`.
    pub item: Option<String>,
    /// The written justification. Required, surfaced in reports.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for error messages.
    pub line: u32,
}

impl AllowEntry {
    /// Whether this entry suppresses the given finding.
    pub fn matches(&self, rule: &str, path: &str, item: &str) -> bool {
        self.rule == rule
            && self.path == path
            && self.item.as_deref().is_none_or(|want| want == item)
    }
}

/// Parses the allowlist, validating entry shape and required fields.
///
/// # Errors
///
/// Returns a message naming the offending line for malformed lines,
/// unknown or duplicate keys, and entries missing `rule`, `path`, or a
/// non-empty `reason`.
pub fn parse_allowlist(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(entry) = current.take() {
                validate(&entry)?;
                entries.push(entry);
            }
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                item: None,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "analyzer.toml:{lineno}: content before the first [[allow]] table"
            ));
        };
        let Some((key, value)) = parse_kv(line) else {
            return Err(format!(
                "analyzer.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
            ));
        };
        let slot = match key {
            "rule" => &mut entry.rule,
            "path" => &mut entry.path,
            "reason" => &mut entry.reason,
            "item" => {
                if entry.item.is_some() {
                    return Err(format!("analyzer.toml:{lineno}: duplicate key `item`"));
                }
                entry.item = Some(value);
                continue;
            }
            other => {
                return Err(format!("analyzer.toml:{lineno}: unknown key `{other}`"));
            }
        };
        if !slot.is_empty() {
            return Err(format!("analyzer.toml:{lineno}: duplicate key `{key}`"));
        }
        *slot = value;
    }
    if let Some(entry) = current.take() {
        validate(&entry)?;
        entries.push(entry);
    }
    Ok(entries)
}

fn validate(entry: &AllowEntry) -> Result<(), String> {
    for (field, value) in [
        ("rule", &entry.rule),
        ("path", &entry.path),
        ("reason", &entry.reason),
    ] {
        if value.trim().is_empty() {
            return Err(format!(
                "analyzer.toml:{}: [[allow]] entry is missing a non-empty `{field}` \
                 (every exception needs a rule, a path, and a written justification)",
                entry.line
            ));
        }
    }
    Ok(())
}

/// Parses `key = "value"`, tolerating a trailing `# comment`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let rest = rest.strip_prefix('"')?;
    let (value, tail) = rest.split_once('"')?;
    let tail = tail.trim();
    if !(tail.is_empty() || tail.starts_with('#')) {
        return None;
    }
    Some((key, value.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_optional_item() {
        let src = r#"
# header comment
[[allow]]
rule = "DET-TIME"
path = "crates/bench/src/scheduler.rs"
reason = "timing metadata only"  # trailing comment

[[allow]]
rule = "PANIC-PATH"
path = "crates/core/src/engine.rs"
item = "panic!"
reason = "documented compat contract"
"#;
        let entries = parse_allowlist(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].item, None);
        assert_eq!(entries[1].item.as_deref(), Some("panic!"));
        assert!(entries[0].matches("DET-TIME", "crates/bench/src/scheduler.rs", "Instant"));
        assert!(!entries[1].matches("PANIC-PATH", "crates/core/src/engine.rs", "unwrap"));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let src = "[[allow]]\nrule = \"DET-HASH\"\npath = \"x.rs\"\n";
        let err = parse_allowlist(src).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let src = "[[allow]]\nrule = \"A\"\npath = \"b\"\nreason = \"c\"\nlines = \"3\"\n";
        assert!(parse_allowlist(src).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn content_before_first_table_is_rejected() {
        assert!(parse_allowlist("rule = \"A\"\n").is_err());
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let src = "[[allow]]\nrule = \"A\"\nrule = \"B\"\npath = \"p\"\nreason = \"r\"\n";
        assert!(parse_allowlist(src).unwrap_err().contains("duplicate"));
    }
}
