//! UKSM: Ultra KSM, the alternative software deduplicator of §7.2.
//!
//! UKSM differs from KSM in three documented ways (the paper's related
//! work, citing [kerneldedup.org]):
//!
//! 1. **whole-system scanning** — it does not rely on
//!    `madvise(MADV_MERGEABLE)` hints; every anonymous page in the system
//!    is a candidate (so a cloud provider cannot exempt VMs);
//! 2. **CPU-budget governor** — the user sets a target CPU share for the
//!    daemon, and UKSM adapts its per-interval page quota to hit it,
//!    instead of KSM's fixed `pages_to_scan`/`sleep_millisecs` pair;
//! 3. **a different hash generation algorithm** — modeled here as a
//!    sampled FNV-style rolling hash whose sampled byte count adapts with
//!    the same governor.
//!
//! The same stable/unstable tree machinery, cost model, and merge
//! operations are reused, so UKSM-vs-KSM comparisons isolate exactly these
//! three policy differences.

use pageforge_types::{Cycle, Gfn, PageData, VmId};
use pageforge_vm::HostMemory;

use crate::algorithm::{BatchReport, Ksm, KsmConfig};
use crate::cost::CostModel;

/// UKSM tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct UksmConfig {
    /// Target CPU share of one core the daemon may consume, in `(0, 1]`.
    pub cpu_share: f64,
    /// Work-interval length in cycles (quota is adapted per interval).
    pub interval_cycles: Cycle,
    /// Initial pages per interval (adapted thereafter).
    pub initial_quota: usize,
    /// Bytes sampled per page by the UKSM hash (adaptive in real UKSM;
    /// fixed here).
    pub hash_sample_bytes: usize,
    /// Cost model shared with KSM.
    pub cost: CostModel,
}

impl Default for UksmConfig {
    fn default() -> Self {
        UksmConfig {
            cpu_share: 0.2,
            interval_cycles: 200_000,
            initial_quota: 16,
            hash_sample_bytes: 128,
            cost: CostModel::default(),
        }
    }
}

/// Sampled FNV-1a over `n` bytes spread across the page — UKSM's cheap
/// "strength-adaptive" page digest stand-in.
pub fn uksm_digest(page: &PageData, sample_bytes: usize) -> u64 {
    let bytes = page.as_bytes();
    let n = sample_bytes.clamp(1, bytes.len());
    let stride = bytes.len() / n;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..n {
        h ^= u64::from(bytes[i * stride]);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The UKSM daemon: KSM's trees and merge machinery under UKSM's policies.
#[derive(Debug, Clone)]
pub struct Uksm {
    cfg: UksmConfig,
    inner: Ksm,
    quota: usize,
    /// Cycles consumed in the last interval (for the governor).
    last_interval_cycles: Cycle,
    intervals: u64,
}

impl Uksm {
    /// Creates a daemon scanning *all* guest pages of `mem` — UKSM takes
    /// no hints ("performs a whole-system memory scan", §7.2).
    pub fn new(cfg: UksmConfig, mem: &HostMemory) -> Self {
        let hints: Vec<(VmId, Gfn)> = mem.iter_mappings().map(|(vm, gfn, _)| (vm, gfn)).collect();
        Self::with_pages(cfg, hints)
    }

    /// Creates a daemon over an explicit page list (tests).
    pub fn with_pages(cfg: UksmConfig, pages: Vec<(VmId, Gfn)>) -> Self {
        let inner_cfg = KsmConfig {
            pages_to_scan: cfg.initial_quota,
            sleep_millisecs: 0,
            cost: cfg.cost,
            shadow_ecc: None,
            use_zero_pages: false,
            cache_bypass: false,
            digest_cache: true,
        };
        Uksm {
            quota: cfg.initial_quota,
            inner: Ksm::new(inner_cfg, pages),
            cfg,
            last_interval_cycles: 0,
            intervals: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &UksmConfig {
        &self.cfg
    }

    /// Current adaptive per-interval quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// The underlying scanning state (trees, stats).
    pub fn inner(&self) -> &Ksm {
        &self.inner
    }

    /// Runs one work interval: scans the current quota of pages, then
    /// adapts the quota so consumed cycles track
    /// `cpu_share × interval_cycles`.
    pub fn work_interval(&mut self, mem: &mut HostMemory) -> BatchReport {
        let report = self.inner.scan_batch(mem, self.quota);
        self.last_interval_cycles = report.cycles.total();
        self.intervals += 1;

        // Multiplicative-increase / multiplicative-decrease governor.
        let budget = (self.cfg.cpu_share * self.cfg.interval_cycles as f64) as Cycle;
        let spent = self.last_interval_cycles.max(1);
        let ratio = budget as f64 / spent as f64;
        let adjusted = (self.quota as f64 * ratio.clamp(0.5, 2.0)).round() as usize;
        self.quota = adjusted.clamp(1, 100_000);
        report
    }

    /// Work intervals executed.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Cycles the last interval consumed (what the governor saw).
    pub fn last_interval_cycles(&self) -> Cycle {
        self.last_interval_cycles
    }

    /// Runs intervals until a full pass merges nothing, or `max_intervals`
    /// elapse. Returns intervals used.
    pub fn run_to_steady_state(&mut self, mem: &mut HostMemory, max_intervals: u64) -> u64 {
        let mut merged_this_pass = 0;
        let mut quiet_passes = 0;
        for i in 1..=max_intervals {
            let r = self.work_interval(mem);
            merged_this_pass += r.merged;
            if r.pass_completed {
                if merged_this_pass == 0 && self.inner.stats().passes >= 2 {
                    quiet_passes += 1;
                    if quiet_passes >= 1 {
                        return i;
                    }
                } else {
                    quiet_passes = 0;
                }
                merged_this_pass = 0;
            }
        }
        max_intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identical_vms(n: u32, b: u8) -> HostMemory {
        let mut mem = HostMemory::new();
        for v in 0..n {
            mem.map_new_page(
                VmId(v),
                Gfn(0),
                PageData::from_fn(move |i| b.wrapping_add((i % 5) as u8)),
            );
        }
        mem
    }

    #[test]
    fn scans_all_pages_without_hints() {
        let mem = identical_vms(4, 1);
        let uksm = Uksm::new(UksmConfig::default(), &mem);
        assert_eq!(uksm.inner().hint_count(), 4);
    }

    #[test]
    fn merges_like_ksm() {
        let mut mem = identical_vms(5, 2);
        let mut uksm = Uksm::new(UksmConfig::default(), &mem);
        uksm.run_to_steady_state(&mut mem, 200);
        assert_eq!(mem.allocated_frames(), 1);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn governor_tracks_cpu_budget() {
        // Many pages with deep trees: quota must settle so that interval
        // cycles approximate the budget.
        let mut mem = HostMemory::new();
        for i in 0..400u64 {
            mem.map_new_page(
                VmId(0),
                Gfn(i),
                PageData::from_fn(move |j| ((i * 37 + j as u64) % 251) as u8),
            );
        }
        let cfg = UksmConfig {
            cpu_share: 0.25,
            interval_cycles: 200_000,
            ..UksmConfig::default()
        };
        let budget = (cfg.cpu_share * cfg.interval_cycles as f64) as Cycle;
        let mut uksm = Uksm::new(cfg, &mem);
        let mut spent = Vec::new();
        for _ in 0..60 {
            uksm.work_interval(&mut mem);
            spent.push(uksm.last_interval_cycles());
        }
        // After convergence, the average of the last intervals is within
        // 2x of the budget (governor granularity is one page).
        let tail = &spent[40..];
        let avg = tail.iter().sum::<Cycle>() as f64 / tail.len() as f64;
        assert!(
            avg > budget as f64 * 0.4 && avg < budget as f64 * 2.5,
            "avg {avg} vs budget {budget}"
        );
    }

    #[test]
    fn quota_increases_when_under_budget() {
        let mut mem = identical_vms(3, 1);
        let mut uksm = Uksm::new(UksmConfig::default(), &mem);
        let q0 = uksm.quota();
        // Scanning 3 trivial pages costs almost nothing: quota must grow.
        for _ in 0..5 {
            uksm.work_interval(&mut mem);
        }
        assert!(uksm.quota() > q0, "quota {} should grow", uksm.quota());
    }

    #[test]
    fn digest_is_content_sensitive_and_sampled() {
        let a = PageData::zeroed();
        let mut b = PageData::zeroed();
        b.as_bytes_mut()[0] = 1; // byte 0 is always sampled
        assert_ne!(uksm_digest(&a, 128), uksm_digest(&b, 128));
        // Fewer samples → blinder digest: a change between sample points
        // is missed.
        let mut c = PageData::zeroed();
        c.as_bytes_mut()[1] = 1;
        assert_eq!(uksm_digest(&a, 16), uksm_digest(&c, 16));
    }

    #[test]
    fn digest_handles_extreme_sample_counts() {
        let p = PageData::from_fn(|i| i as u8);
        let _ = uksm_digest(&p, 0); // clamps to 1
        let _ = uksm_digest(&p, 100_000); // clamps to page size
    }
}
