//! Benchmark harness regenerating every table and figure of the PageForge
//! paper's evaluation (§5–§6).
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure; the
//! experiment logic lives here so integration tests can validate the same
//! code paths the binaries run. Results print as aligned text tables and
//! are optionally written as JSON under `results/` so EXPERIMENTS.md can be
//! kept honest.
//!
//! Binaries (run with `cargo run --release -p pageforge-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table3_apps` | Table 3 (applications + QPS) |
//! | `fig7_memory_savings` | Figure 7 (memory allocation w/ and w/o merging) |
//! | `fig8_hash_keys` | Figure 8 (jhash vs ECC hash-key outcomes) |
//! | `table4_ksm_characterization` | Table 4 (KSM cycle/L3 characterization) |
//! | `fig9_mean_latency` | Figure 9 (mean sojourn latency, normalized) |
//! | `fig10_tail_latency` | Figure 10 (95th-percentile latency, normalized) |
//! | `fig11_bandwidth` | Figure 11 (memory bandwidth in the busiest phase) |
//! | `table5_design` | Table 5 (Scan-Table timing + area/power) |
//! | `ablation_ecc_offsets` | §3.3/§3.6 minikey-count ablation |
//! | `ablation_scan_table` | §6.4 Scan-Table size ablation |
//! | `ablation_inorder_core` | §4.3 in-order-core alternative |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod experiments;
pub mod report;
pub mod scheduler;
pub mod snapshot_diff;
pub mod suite;
pub mod timing_gate;
pub mod trace_report;

pub use args::BenchArgs;
pub use report::Table;
