//! Randomized tests: red-black tree invariants under random operation
//! sequences, and end-to-end KSM merge correctness. Driven by the vendored
//! deterministic RNG (fixed seeds; failures reproduce exactly).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pageforge_ksm::rbtree::RbTree;
use pageforge_ksm::{Ksm, KsmConfig};
use pageforge_types::{derive_seed, Gfn, PageData, VmId};
use pageforge_vm::HostMemory;

fn rng_for(label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(0x2B7, label))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    RemoveNth(u16),
}

fn arb_ops(rng: &mut SmallRng) -> Vec<Op> {
    let n = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| {
            // Weights 3:1 insert:remove, as the original strategy had.
            if rng.gen_range(0u32..4) < 3 {
                Op::Insert(rng.gen::<u16>())
            } else {
                Op::RemoveNth(rng.gen::<u16>())
            }
        })
        .collect()
}

/// Random insert/remove sequences preserve the red-black invariants and
/// agree with a sorted-model reference.
#[test]
fn rbtree_matches_model() {
    let mut rng = rng_for("rbtree_model");
    for _ in 0..64 {
        let ops = arb_ops(&mut rng);
        let mut tree: RbTree<u16> = RbTree::new();
        let mut handles = Vec::new();
        let mut model: Vec<u16> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    let id = tree.insert_ord(v);
                    handles.push(id);
                    model.push(v);
                }
                Op::RemoveNth(n) => {
                    if !handles.is_empty() {
                        let idx = n as usize % handles.len();
                        let id = handles.swap_remove(idx);
                        let v = tree.remove(id);
                        let pos = model.iter().position(|&x| x == v).unwrap();
                        model.swap_remove(pos);
                    }
                }
            }
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("invariant violated: {e}"));
        }
        model.sort_unstable();
        let inorder: Vec<u16> = tree.iter().copied().collect();
        assert_eq!(inorder, model);
    }
}

/// The tree height stays logarithmic (RB guarantee: ≤ 2·log2(n+1)).
#[test]
fn rbtree_height_is_logarithmic() {
    let mut rng = rng_for("rbtree_height");
    for _ in 0..32 {
        let count = rng.gen_range(1usize..500);
        let mut tree = RbTree::new();
        for _ in 0..count {
            tree.insert_ord(rng.gen::<u32>());
        }
        let n = tree.len();
        let bound = 2 * ((n + 1) as f64).log2().ceil() as usize + 1;
        for (id, _) in tree.iter_ids() {
            let mut depth = 0;
            let mut cur = Some(id);
            while let Some(x) = cur {
                depth += 1;
                cur = tree.parent(x);
            }
            assert!(depth <= bound, "depth {depth} > bound {bound} for n={n}");
        }
    }
}

/// KSM merges exactly the duplicate classes: after steady state, the
/// number of frames equals the number of distinct page contents, and
/// every guest still reads its original bytes.
#[test]
fn ksm_reaches_content_optimal_state() {
    let mut rng = rng_for("content_optimal");
    for _ in 0..32 {
        let n = rng.gen_range(2usize..24);
        let contents: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..6)).collect();
        let mut mem = HostMemory::new();
        let mut hints = Vec::new();
        let mut originals = Vec::new();
        for (i, &c) in contents.iter().enumerate() {
            let vm = VmId((i % 4) as u32);
            let gfn = Gfn((i / 4) as u64);
            let data = PageData::from_fn(|j| c.wrapping_add((j % 7) as u8));
            mem.map_new_page(vm, gfn, data.clone());
            hints.push((vm, gfn));
            originals.push((vm, gfn, data));
        }
        let mut ksm = Ksm::new(KsmConfig::default(), hints);
        ksm.run_to_steady_state(&mut mem, 12);

        // Frame count equals distinct contents.
        let mut distinct: Vec<u8> = contents.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(mem.allocated_frames(), distinct.len());

        // No guest observes corrupted data.
        for (vm, gfn, data) in &originals {
            assert_eq!(mem.guest_read(*vm, *gfn).unwrap(), data);
        }
        mem.check_invariants().unwrap();
    }
}

/// Writes between passes never corrupt other guests' views.
#[test]
fn ksm_with_interleaved_writes_is_safe() {
    let mut rng = rng_for("interleaved_writes");
    for _ in 0..32 {
        let n = rng.gen_range(4usize..16);
        let contents: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..4)).collect();
        let n_writes = rng.gen_range(0usize..20);
        let writes: Vec<(usize, usize, u8)> = (0..n_writes)
            .map(|_| {
                (
                    rng.gen_range(0usize..16),
                    rng.gen_range(0usize..4096),
                    rng.gen::<u8>(),
                )
            })
            .collect();
        let mut mem = HostMemory::new();
        let mut hints = Vec::new();
        for (i, &c) in contents.iter().enumerate() {
            let vm = VmId(i as u32);
            mem.map_new_page(vm, Gfn(0), PageData::from_fn(|_| c));
            hints.push((vm, Gfn(0)));
        }
        let mut ksm = Ksm::new(KsmConfig::default(), hints);
        let mut expected: Vec<PageData> = (0..n)
            .map(|i| mem.guest_read(VmId(i as u32), Gfn(0)).unwrap().clone())
            .collect();

        for (k, &(who, off, val)) in writes.iter().enumerate() {
            let vm = VmId((who % n) as u32);
            mem.guest_write(vm, Gfn(0), off, &[val]);
            expected[who % n].as_bytes_mut()[off] = val;
            if k % 3 == 0 {
                ksm.scan_batch(&mut mem, n);
            }
        }
        ksm.run_to_steady_state(&mut mem, 8);
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(mem.guest_read(VmId(i as u32), Gfn(0)).unwrap(), exp);
        }
        mem.check_invariants().unwrap();
    }
}
