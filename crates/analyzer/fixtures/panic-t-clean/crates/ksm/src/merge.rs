//! Fixture: the helper chain reached from the hot path handles the
//! empty-table arm instead of unwrapping — nothing to flag.

pub fn merge_pages() -> u64 {
    digest_helper()
}

fn digest_helper() -> u64 {
    let table = build_table();
    table.first().copied().unwrap_or(0)
}

fn build_table() -> Vec<u64> {
    vec![7]
}
