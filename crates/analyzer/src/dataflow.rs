//! Shared-state dataflow facts over the call graph.
//!
//! `LOCK-ORDER` and `SPEC-SAFE` both reduce to the same two questions:
//! *where does code touch shared-mutable state* (mutex acquisitions,
//! atomic read-modify-writes and stores, channel sends), and *which
//! functions reach those sites transitively*. This module computes the
//! direct markers per function and their fixed-point closure over the
//! [`crate::callgraph::CallGraph`], plus the closure-argument extraction
//! the worker-audit rule needs.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parse::{match_brace, FnDef};

/// What kind of shared-mutable touch a [`Marker`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MarkerKind {
    /// `.lock()` on a mutex.
    Lock,
    /// An atomic read-modify-write or store.
    Atomic,
    /// A channel send.
    Send,
}

/// One direct shared-mutable touch inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// The touch kind.
    pub kind: MarkerKind,
    /// Lock class for [`MarkerKind::Lock`] (receiver-derived), the
    /// operation name for atomics, `send` for sends.
    pub detail: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the `.` introducing the call.
    pub tok: usize,
}

/// Atomic operations that mutate shared state. Loads are deliberately
/// absent: the rules audit *writes*.
const ATOMIC_OPS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "store",
    "swap",
];

/// Scans one function body for direct markers.
pub fn direct_markers(f: &FnDef, toks: &[Tok]) -> Vec<Marker> {
    let (s, e) = f.body;
    let mut out = Vec::new();
    for i in s..e.min(toks.len()) {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if name.is_ident("lock") {
            out.push(Marker {
                kind: MarkerKind::Lock,
                detail: lock_class(f, toks, i),
                line: name.line,
                tok: i,
            });
        } else if ATOMIC_OPS.contains(&name.text.as_str()) {
            out.push(Marker {
                kind: MarkerKind::Atomic,
                detail: name.text.clone(),
                line: name.line,
                tok: i,
            });
        } else if name.is_ident("send") {
            out.push(Marker {
                kind: MarkerKind::Send,
                detail: "send".to_owned(),
                line: name.line,
                tok: i,
            });
        }
    }
    out
}

/// Names the lock class acquired by a `.lock()` at token `dot`.
///
/// A `lock_<class>` wrapper function names the class explicitly (the
/// fleet's `lock_host` → `host`); otherwise the class is the receiver's
/// base identifier (`slots[idx].lock()` → `slots`). Receiver-derived
/// names are per-binding approximations, which is exactly the right
/// granularity for an acquisition-order audit within one crate.
pub fn lock_class(f: &FnDef, toks: &[Tok], dot: usize) -> String {
    if let Some(class) = f.name.strip_prefix("lock_") {
        if !class.is_empty() {
            return class.to_owned();
        }
    }
    // Walk backwards over balanced `(..)` / `[..]` groups to the
    // receiver's base identifier.
    let mut j = dot;
    while j > f.body.0 {
        j -= 1;
        match toks[j].text.as_str() {
            ")" => j = backward_match(toks, j, '(', ')'),
            "]" => j = backward_match(toks, j, '[', ']'),
            _ => {
                if toks[j].kind == TokKind::Ident {
                    return toks[j].text.clone();
                }
                if !toks[j].is_punct('.') {
                    break;
                }
            }
        }
    }
    "lock".to_owned()
}

/// Index of the opener matching the closer at `close`, searching
/// backwards; returns `close` when unmatched.
fn backward_match(toks: &[Tok], close: usize, open: char, shut: char) -> usize {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_punct(shut) {
            depth += 1;
        } else if toks[j].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return close;
        }
        j -= 1;
    }
}

/// Per-function transitive lock classes: the classes a call to the
/// function may acquire, directly or through any resolved callee.
/// Fixed-point over the call graph.
pub fn transitive_lock_classes(graph: &CallGraph, direct: &[Vec<Marker>]) -> Vec<BTreeSet<String>> {
    let mut sets: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|ms| {
            ms.iter()
                .filter(|m| m.kind == MarkerKind::Lock)
                .map(|m| m.detail.clone())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            for &callee in &graph.edges[i] {
                if callee == i {
                    continue;
                }
                let add: Vec<String> = sets[callee]
                    .iter()
                    .filter(|c| !sets[i].contains(*c))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    sets[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// Per-function flag: does the function (transitively) contain any
/// marker at all? Used by `SPEC-SAFE` to audit calls out of worker
/// closures.
pub fn reaches_marker(graph: &CallGraph, direct: &[Vec<Marker>]) -> Vec<bool> {
    let mut reach: Vec<bool> = direct.iter().map(|ms| !ms.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            if reach[i] {
                continue;
            }
            if graph.edges[i].iter().any(|&c| reach[c]) {
                reach[i] = true;
                changed = true;
            }
        }
        if !changed {
            return reach;
        }
    }
}

/// A closure literal extracted from a call's argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureArg {
    /// Token range of the closure body (inside braces for block
    /// bodies, the bare expression otherwise).
    pub body: (usize, usize),
    /// 1-based line of the closure's `|`.
    pub line: u32,
}

/// Extracts the first closure literal among the arguments of the call
/// whose name token is at `name_tok` (the `(` must follow it).
pub fn closure_arg(toks: &[Tok], name_tok: usize) -> Option<ClosureArg> {
    let open = name_tok + 1;
    if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('(') || toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(')') || toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return None; // call closed without a closure argument
            }
        } else if depth == 1 && toks[i].is_punct('|') {
            let line = toks[i].line;
            // Parameter list: `||` or `|params|`.
            let mut j = i + 1;
            if !toks.get(j).is_some_and(|t| t.is_punct('|')) {
                while j < toks.len() && !toks[j].is_punct('|') {
                    j += 1;
                }
            }
            let body_start = j + 1;
            if toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
                let close = match_brace(toks, body_start);
                return Some(ClosureArg {
                    body: (body_start + 1, close),
                    line,
                });
            }
            // Expression body: runs to the `,` or `)` closing the
            // argument, at the call's own nesting level.
            let mut k = body_start;
            let mut d = 0usize;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                } else if d == 0 && t.is_punct(',') {
                    break;
                }
                k += 1;
            }
            return Some(ClosureArg {
                body: (body_start, k),
                line,
            });
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_tests};
    use crate::parse::parse_file;

    fn setup(src: &str) -> (Vec<Tok>, Vec<FnDef>) {
        let toks = strip_tests(&lex(src));
        let fns = parse_file("crates/fleet/src/plane.rs", &toks);
        (toks, fns)
    }

    #[test]
    fn lock_wrapper_names_the_class_after_the_prefix() {
        let (toks, fns) = setup(
            "fn lock_host(m: &Mutex<Host>) -> MutexGuard<Host> { m.lock().unwrap_or_else(e) }",
        );
        let ms = direct_markers(&fns[0], &toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MarkerKind::Lock);
        assert_eq!(ms[0].detail, "host");
    }

    #[test]
    fn receiver_naming_handles_index_chains() {
        let (toks, fns) = setup("fn work() { *slots[idx].lock().expect(\"m\") = v; }");
        let ms = direct_markers(&fns[0], &toks);
        assert_eq!(ms[0].detail, "slots");
    }

    #[test]
    fn atomics_and_sends_are_markers_loads_are_not() {
        let (toks, fns) = setup(
            "fn work() { cursor.fetch_add(1, o); flag.store(true, o); tx.send(x); n.load(o); }",
        );
        let ms = direct_markers(&fns[0], &toks);
        let kinds: Vec<_> = ms.iter().map(|m| (m.kind, m.detail.as_str())).collect();
        assert_eq!(
            kinds,
            [
                (MarkerKind::Atomic, "fetch_add"),
                (MarkerKind::Atomic, "store"),
                (MarkerKind::Send, "send")
            ]
        );
    }

    #[test]
    fn lock_classes_propagate_through_calls() {
        let files: Vec<(String, Vec<Tok>)> = vec![(
            "crates/fleet/src/plane.rs".to_owned(),
            strip_tests(&lex(
                "fn lock_host(m: &M) -> MutexGuard<H> { m.lock().unwrap_or_else(e) }
                 fn helper(h: &M) { lock_host(h); }
                 fn top(h: &M) { helper(h); }
                 fn clean() {}",
            )),
        )];
        let mut fns = Vec::new();
        for (rel, toks) in &files {
            fns.extend(parse_file(rel, toks));
        }
        let g = CallGraph::build(&files, fns);
        let direct: Vec<Vec<Marker>> = g
            .fns
            .iter()
            .map(|f| direct_markers(f, &files[0].1))
            .collect();
        let classes = transitive_lock_classes(&g, &direct);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let clean = g.fns.iter().position(|f| f.name == "clean").unwrap();
        assert!(classes[top].contains("host"));
        assert!(classes[clean].is_empty());
        let reach = reaches_marker(&g, &direct);
        assert!(reach[top] && !reach[clean]);
    }

    #[test]
    fn closure_args_are_extracted_with_block_and_expr_bodies() {
        let toks = strip_tests(&lex(
            "fn top() { ordered_map(threads, items, |i| { work(i) }); \
                        ordered_map(t, n, |i| quick(i)); plain(1, 2); }",
        ));
        let names: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("ordered_map") || t.is_ident("plain"))
            .map(|(i, _)| i)
            .collect();
        let c0 = closure_arg(&toks, names[0]).unwrap();
        let body: Vec<&str> = toks[c0.body.0..c0.body.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["work", "(", "i", ")"]);
        let c1 = closure_arg(&toks, names[1]).unwrap();
        let body: Vec<&str> = toks[c1.body.0..c1.body.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["quick", "(", "i", ")"]);
        assert!(closure_arg(&toks, names[2]).is_none());
    }
}
