//! The fleet experiment's byte-identity contract, end to end.
//!
//! DESIGN.md §10: `results/fleet_serverless.json` is a pure function of
//! `(config, seed)` — `--jobs` (experiment scheduler workers) and
//! `--shards` (the control plane's host-stepping pool) may only change
//! wall-clock, never bytes, including under a non-empty fault plan
//! whose per-host injectors must perturb the same candidates regardless
//! of which worker thread steps each host.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use pageforge_bench::{suite, BenchArgs};
use pageforge_faults::FaultPlan;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pageforge-fleet-det-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the smoke-scale fleet family at one `--jobs`/`--shards` level
/// and returns every JSON artifact it produced, keyed by file name.
fn run_fleet(
    jobs: usize,
    shards: usize,
    faults: Option<&Path>,
    tag: &str,
) -> BTreeMap<String, Vec<u8>> {
    let out_dir = temp_dir(tag);
    let args = BenchArgs {
        smoke: true,
        jobs,
        shards,
        only: vec!["fleet".into()],
        out_dir: out_dir.clone(),
        faults: faults.map(Path::to_path_buf),
        ..BenchArgs::default()
    };
    let outcome = suite::run_suite(&args).expect("fleet suite runs");
    for (stem, table) in &outcome.tables {
        table.write_json(&out_dir, stem);
    }
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(&out_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            files.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&out_dir);
    files
}

fn assert_identical(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>, what: &str) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: file sets differ"
    );
    for (name, bytes) in a {
        assert_eq!(bytes, &b[name], "{what}: {name} bytes differ");
    }
}

#[test]
fn fleet_results_are_byte_identical_across_jobs_and_shard_levels() {
    let reference = run_fleet(2, 1, None, "j2s1");
    assert!(
        reference.contains_key("fleet_serverless.json"),
        "the fleet table is part of the compared artifact set: {:?}",
        reference.keys()
    );
    let jobs4 = run_fleet(4, 1, None, "j4s1");
    let shards4 = run_fleet(2, 4, None, "j2s4");
    assert_identical(&reference, &jobs4, "jobs 2 vs 4");
    assert_identical(&reference, &shards4, "shards 1 vs 4");
}

#[test]
fn faulted_fleet_results_are_byte_identical_across_shard_levels() {
    let dir = temp_dir("plan");
    let plan_path = dir.join("plan.json");
    let plan = FaultPlan::generate(7, 5_000_000, 24, 1, 10_000);
    assert!(!plan.is_empty(), "the generated plan must actually fault");
    plan.write_file(&plan_path).unwrap();
    let one = run_fleet(2, 1, Some(&plan_path), "f1");
    let four = run_fleet(2, 4, Some(&plan_path), "f4");
    assert_identical(&one, &four, "faulted shards 1 vs 4");
    // A plan must not be a silent no-op, but neither may it leak into
    // the artifact names: the faulted run produces the same file set as
    // the fault-free one (the `degraded` section rides inside the JSON).
    let clean = run_fleet(2, 1, None, "clean");
    assert_eq!(
        clean.keys().collect::<Vec<_>>(),
        one.keys().collect::<Vec<_>>(),
        "fault plans may not change the artifact set"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
