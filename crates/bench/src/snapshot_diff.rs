//! Metric-by-metric comparison of two observability snapshots.
//!
//! A [`pageforge_obs::Snapshot`] written by `run_observed` (or any tool
//! that serialises one to JSON) is a name-sorted map of counters, gauges,
//! and histogram summaries. [`diff`] lines two of them up and reports
//! what appeared, what vanished, and what changed by how much — the
//! regression check the `snapshot_diff` binary wraps: it exits nonzero
//! when any relative delta exceeds a threshold, so CI can gate on "this
//! refactor moved no metric".
//!
//! Histograms are compared field-by-field (`count`, `mean`, `stddev`,
//! `min`, `max`), each reported as its own named row (`name.mean`, ...),
//! so a distribution shift is attributed to the moment that moved. A
//! metric that changed *kind* between snapshots (say, a gauge that became
//! a histogram) is reported as removed-plus-added rather than a delta.

use pageforge_obs::{Snapshot, SnapshotValue};

/// One scalar that differs between the two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name; histogram fields carry a `.count` / `.mean` /
    /// `.stddev` / `.min` / `.max` suffix.
    pub name: String,
    /// Value in the first ("before") snapshot.
    pub before: f64,
    /// Value in the second ("after") snapshot.
    pub after: f64,
    /// Relative delta `(after - before) / |before|`; ±∞ when `before`
    /// is 0 and `after` is not.
    pub rel: f64,
}

/// The outcome of [`diff`]: metric movements between two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Metrics present only in the second snapshot.
    pub added: Vec<String>,
    /// Metrics present only in the first snapshot.
    pub removed: Vec<String>,
    /// Scalars present in both with different values, in name order.
    pub changed: Vec<MetricDelta>,
    /// Metrics present in both with identical values.
    pub unchanged: usize,
}

/// Flattens one snapshot value into named scalars.
fn scalars(name: &str, value: &SnapshotValue) -> Vec<(String, f64)> {
    match value {
        SnapshotValue::Counter(c) => vec![(name.to_owned(), *c as f64)],
        SnapshotValue::Gauge(g) => vec![(name.to_owned(), *g)],
        SnapshotValue::Histogram(h) => vec![
            (format!("{name}.count"), h.count as f64),
            (format!("{name}.mean"), h.mean),
            (format!("{name}.stddev"), h.stddev),
            (format!("{name}.min"), h.min),
            (format!("{name}.max"), h.max),
        ],
    }
}

/// The kind tag used to detect counter/gauge/histogram changes.
fn kind(value: &SnapshotValue) -> &'static str {
    match value {
        SnapshotValue::Counter(_) => "counter",
        SnapshotValue::Gauge(_) => "gauge",
        SnapshotValue::Histogram(_) => "histogram",
    }
}

/// Relative delta; ±∞ when moving off an exact zero.
fn relative(before: f64, after: f64) -> f64 {
    if before == after {
        0.0
    } else if before == 0.0 {
        if after > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (after - before) / before.abs()
    }
}

/// Compares two snapshots metric-by-metric. Both inputs keep their
/// entries name-sorted, so a single merge pass classifies every name.
pub fn diff(before: &Snapshot, after: &Snapshot) -> SnapshotDiff {
    let mut out = SnapshotDiff::default();
    let a = before.entries();
    let b = after.entries();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let order = match (a.get(i), b.get(j)) {
            (Some((na, _)), Some((nb, _))) => na.cmp(nb),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => unreachable!("loop condition"),
        };
        match order {
            std::cmp::Ordering::Less => {
                out.removed.push(a[i].0.clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.added.push(b[j].0.clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (name, va) = &a[i];
                let vb = &b[j].1;
                if kind(va) != kind(vb) {
                    // A kind change is a schema change, not a delta.
                    out.removed.push(format!("{name} ({})", kind(va)));
                    out.added.push(format!("{name} ({})", kind(vb)));
                } else {
                    for ((field, x), (_, y)) in scalars(name, va).into_iter().zip(scalars(name, vb))
                    {
                        if x == y {
                            out.unchanged += 1;
                        } else {
                            out.changed.push(MetricDelta {
                                name: field,
                                before: x,
                                after: y,
                                rel: relative(x, y),
                            });
                        }
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl SnapshotDiff {
    /// Whether the two snapshots are metric-for-metric identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Whether any movement exceeds `threshold`: a changed scalar with
    /// `|rel| > threshold`, or (regardless of threshold) a metric that
    /// appeared or vanished. The default threshold 0.0 therefore flags
    /// *any* difference.
    pub fn exceeds(&self, threshold: f64) -> bool {
        !self.added.is_empty()
            || !self.removed.is_empty()
            || self.changed.iter().any(|d| d.rel.abs() > threshold)
    }

    /// Renders the diff as a human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_empty() {
            let _ = writeln!(out, "snapshots identical ({} metrics)", self.unchanged);
            return out;
        }
        for name in &self.removed {
            let _ = writeln!(out, "removed   {name}");
        }
        for name in &self.added {
            let _ = writeln!(out, "added     {name}");
        }
        for d in &self.changed {
            let _ = writeln!(
                out,
                "changed   {}  {} -> {}  ({:+.2}%)",
                d.name,
                d.before,
                d.after,
                d.rel * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{} changed, {} added, {} removed, {} unchanged",
            self.changed.len(),
            self.added.len(),
            self.removed.len(),
            self.unchanged
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pageforge_obs::Registry;
    use pageforge_types::json::{self, FromJson, ToJson};

    fn snap(counter: u64, gauge: f64, samples: &[f64]) -> Snapshot {
        let mut reg = Registry::new();
        let c = reg.counter("engine.batches");
        let g = reg.gauge("mem.savings");
        let h = reg.histogram("engine.run_cycles");
        reg.add(c, counter);
        reg.set(g, gauge);
        for s in samples {
            reg.observe(h, *s);
        }
        reg.snapshot()
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let d = diff(&snap(5, 0.5, &[1.0, 2.0]), &snap(5, 0.5, &[1.0, 2.0]));
        assert!(d.is_empty());
        assert!(!d.exceeds(0.0));
        // counter + gauge + 5 histogram fields.
        assert_eq!(d.unchanged, 7);
    }

    #[test]
    fn changed_counter_reports_relative_delta() {
        let d = diff(&snap(100, 0.5, &[1.0]), &snap(110, 0.5, &[1.0]));
        assert_eq!(d.changed.len(), 1);
        let delta = &d.changed[0];
        assert_eq!(delta.name, "engine.batches");
        assert!((delta.rel - 0.10).abs() < 1e-12);
        assert!(d.exceeds(0.05));
        assert!(!d.exceeds(0.15));
    }

    #[test]
    fn histogram_fields_diff_individually() {
        let d = diff(&snap(5, 0.5, &[1.0, 3.0]), &snap(5, 0.5, &[1.0, 5.0]));
        let names: Vec<&str> = d.changed.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"engine.run_cycles.mean"));
        assert!(names.contains(&"engine.run_cycles.max"));
        assert!(!names.contains(&"engine.run_cycles.count"));
        assert!(!names.contains(&"engine.run_cycles.min"));
    }

    #[test]
    fn added_and_removed_metrics_always_exceed() {
        let mut reg = Registry::new();
        let c = reg.counter("engine.batches");
        reg.add(c, 5);
        let small = reg.snapshot();
        let d = diff(&small, &snap(5, 0.5, &[1.0]));
        assert!(d.changed.is_empty());
        assert_eq!(d.added.len(), 2);
        assert!(d.exceeds(f64::INFINITY));
        let d = diff(&snap(5, 0.5, &[1.0]), &small);
        assert_eq!(d.removed.len(), 2);
    }

    #[test]
    fn zero_to_nonzero_is_infinite() {
        let d = diff(&snap(0, 0.5, &[1.0]), &snap(3, 0.5, &[1.0]));
        assert_eq!(d.changed[0].rel, f64::INFINITY);
        assert!(d.exceeds(1e12));
    }

    #[test]
    fn diff_survives_json_roundtrip_of_inputs() {
        let a = snap(5, 0.5, &[1.0, 2.0]);
        let b = Snapshot::from_json(&json::parse(&a.to_json().to_string_pretty()).unwrap())
            .expect("snapshot parses back");
        assert!(diff(&a, &b).is_empty());
    }
}
