//! SECDED ECC codec and ECC-based page hash keys, as used by PageForge.
//!
//! DRAM in the modeled server is protected by a (72,64) single-error-correct,
//! double-error-detect (SECDED) code: 8 check bits per 64 data bits,
//! obtained by truncating the (127,120) Hamming code to 64 data bits and
//! adding an overall parity bit (§6.2 of the paper). The memory controller
//! encodes every 64-bit word on writes and decodes on reads.
//!
//! PageForge's key insight (§3.3) is that these ECC codes are *already*
//! content hashes: the hash key of a page can be assembled for free by
//! concatenating the low 8 ECC bits ("minikeys") of a few fixed cache lines
//! of the page, as they stream through the memory controller during page
//! comparison.
//!
//! This crate provides:
//!
//! * [`Secded72`] — the (72,64) codec with encode, decode/correct, and error
//!   injection ([`hamming`]);
//! * [`LineEcc`] — the 8-byte ECC of one 64-byte cache line;
//! * [`EccKeyConfig`], [`EccHashKey`], [`KeyBuilder`] — ECC-based page hash
//!   keys with out-of-order incremental assembly ([`keys`]).
//!
//! # Examples
//!
//! ```
//! use pageforge_ecc::{EccKeyConfig, Secded72};
//! use pageforge_types::PageData;
//!
//! // ECC protects data.
//! let code = Secded72::encode(0xDEAD_BEEF_0123_4567);
//! let flipped = 0xDEAD_BEEF_0123_4567 ^ (1 << 13);
//! let decoded = Secded72::decode(flipped, code);
//! assert_eq!(decoded.data(), Some(0xDEAD_BEEF_0123_4567));
//!
//! // ...and doubles as a page hash.
//! let cfg = EccKeyConfig::default();
//! let page = PageData::from_fn(|i| i as u8);
//! let key = cfg.page_key(&page);
//! assert_eq!(key, cfg.page_key(&page.clone()));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod hamming;
pub mod keys;

pub use hamming::{Decoded, EccCode, LineEcc, Secded72};
pub use keys::{EccHashKey, EccKeyConfig, EccKeyConfigError, KeyBuilder};
