//! Fixture crate for the missing-tables hard-error path.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
