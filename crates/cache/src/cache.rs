//! A single set-associative cache with MESI line states and true-LRU
//! replacement.

use pageforge_types::{Cycle, LineAddr, LINE_SIZE};

/// MESI coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Valid, clean, possibly shared with other caches.
    Shared,
    /// Valid, clean, exclusive to this cache.
    Exclusive,
    /// Valid, dirty, exclusive to this cache.
    Modified,
}

impl LineState {
    /// Whether the line must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Round-trip hit latency in cycles.
    pub latency: Cycle,
    /// Miss-status-holding registers (bookkeeping only; outstanding-miss
    /// limits are enforced by the core model).
    pub mshrs: usize,
}

impl CacheConfig {
    /// The paper's L1: 32 KB, 8-way, 2-cycle round trip, 16 MSHRs.
    pub fn l1_micro50() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            latency: 2,
            mshrs: 16,
        }
    }

    /// The paper's L2: 256 KB, 8-way, 6-cycle round trip, 16 MSHRs.
    pub fn l2_micro50() -> Self {
        CacheConfig {
            size_bytes: 256 << 10,
            ways: 8,
            latency: 6,
            mshrs: 16,
        }
    }

    /// The paper's shared L3: 32 MB, 20-way, 20-cycle round trip.
    pub fn l3_micro50() -> Self {
        CacheConfig {
            size_bytes: 32 << 20,
            ways: 20,
            latency: 20,
            mshrs: 24 * 10, // 24 per slice, 10 slices
        }
    }

    /// Number of sets implied by the geometry (rounded down when the line
    /// count does not divide evenly by the associativity, as with a 32 MB
    /// 20-way cache).
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer lines than one way.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / LINE_SIZE;
        assert!(lines >= self.ways, "cache smaller than one set");
        lines / self.ways
    }
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
    /// Lines invalidated by coherence actions.
    pub invalidations: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 when there were no lookups.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    state: LineState,
    last_used: u64,
}

/// One set-associative cache. Tags only — data lives in `HostMemory`.
///
/// Ways are stored in one flat arena (`num_sets × ways` slots) rather than
/// per-set `Vec`s: a set is the contiguous slice
/// `ways[set × cfg.ways ..][.. occupancy[set]]`, which keeps lookups on a
/// single allocation and makes the hierarchy's snoop scans cache-friendly
/// on the host.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Flat way storage: slot `set * cfg.ways + i` holds way `i` of `set`.
    ways: Vec<Way>,
    /// Live ways per set (the occupied prefix of the set's slice).
    occupancy: Vec<u8>,
    num_sets: usize,
    use_counter: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.ways` exceeds the `u8` occupancy counters.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.ways <= u8::MAX as usize,
            "set occupancy is tracked in u8 counters"
        );
        let num_sets = cfg.num_sets();
        SetAssocCache {
            cfg,
            ways: vec![
                Way {
                    tag: 0,
                    state: LineState::Shared,
                    last_used: 0,
                };
                num_sets * cfg.ways
            ],
            occupancy: vec![0; num_sets],
            num_sets,
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.0 % self.num_sets as u64) as usize
    }

    /// The occupied ways of `addr`'s set.
    fn set_ways(&self, set: usize) -> &[Way] {
        let base = set * self.cfg.ways;
        &self.ways[base..base + self.occupancy[set] as usize]
    }

    fn set_ways_mut(&mut self, set: usize) -> &mut [Way] {
        let base = set * self.cfg.ways;
        &mut self.ways[base..base + self.occupancy[set] as usize]
    }

    /// Looks up `addr`, updating LRU and hit/miss counters.
    /// Returns the line's state on a hit.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<LineState> {
        let set = self.set_index(addr);
        self.use_counter += 1;
        let counter = self.use_counter;
        let hit = self
            .set_ways_mut(set)
            .iter_mut()
            .find(|w| w.tag == addr.0)
            .map(|way| {
                way.last_used = counter;
                way.state
            });
        if hit.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Checks presence without touching LRU or counters (snoop path).
    pub fn peek(&self, addr: LineAddr) -> Option<LineState> {
        let set = self.set_index(addr);
        self.set_ways(set)
            .iter()
            .find(|w| w.tag == addr.0)
            .map(|w| w.state)
    }

    /// Sets the state of a resident line. No-op if absent.
    pub fn set_state(&mut self, addr: LineAddr, state: LineState) {
        let set = self.set_index(addr);
        if let Some(way) = self.set_ways_mut(set).iter_mut().find(|w| w.tag == addr.0) {
            way.state = state;
        }
    }

    /// Installs `addr` with `state`, evicting the LRU way if the set is
    /// full. Returns the evicted line, if any.
    pub fn fill(&mut self, addr: LineAddr, state: LineState) -> Option<(LineAddr, LineState)> {
        let set = self.set_index(addr);
        self.use_counter += 1;
        let counter = self.use_counter;
        if let Some(way) = self.set_ways_mut(set).iter_mut().find(|w| w.tag == addr.0) {
            // Already resident: refresh (upgrade) in place.
            way.state = state;
            way.last_used = counter;
            return None;
        }
        let base = set * self.cfg.ways;
        let len = self.occupancy[set] as usize;
        let mut victim = None;
        let slot = if len == self.cfg.ways {
            let lru = self
                .set_ways(set)
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("set is full");
            let evicted = self.ways[base + lru];
            self.stats.evictions += 1;
            if evicted.state.is_dirty() {
                self.stats.writebacks += 1;
            }
            victim = Some((LineAddr(evicted.tag), evicted.state));
            // Mirror the old per-set `swap_remove(lru); push(new)`: the
            // tail way moves into the victim's slot and the new line lands
            // at the tail, preserving slot order exactly.
            if lru != len - 1 {
                self.ways[base + lru] = self.ways[base + len - 1];
            }
            base + len - 1
        } else {
            self.occupancy[set] += 1;
            base + len
        };
        self.ways[slot] = Way {
            tag: addr.0,
            state,
            last_used: counter,
        };
        victim
    }

    /// Invalidates `addr`, returning its state if it was resident.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<LineState> {
        let set = self.set_index(addr);
        if let Some(pos) = self.set_ways(set).iter().position(|w| w.tag == addr.0) {
            let base = set * self.cfg.ways;
            let len = self.occupancy[set] as usize;
            let way = self.ways[base + pos];
            if pos != len - 1 {
                self.ways[base + pos] = self.ways[base + len - 1];
            }
            self.occupancy[set] -= 1;
            self.stats.invalidations += 1;
            Some(way.state)
        } else {
            None
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.occupancy.iter().map(|&n| n as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways.
        SetAssocCache::new(CacheConfig {
            size_bytes: 8 * LINE_SIZE,
            ways: 2,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(LineAddr(0)), None);
        c.fill(LineAddr(0), LineState::Exclusive);
        assert_eq!(c.lookup(LineAddr(0)), Some(LineState::Exclusive));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds addrs 0, 4, 8... (4 sets).
        c.fill(LineAddr(0), LineState::Shared);
        c.fill(LineAddr(4), LineState::Shared);
        c.lookup(LineAddr(0)); // 0 is now MRU
        let victim = c.fill(LineAddr(8), LineState::Shared);
        assert_eq!(victim, Some((LineAddr(4), LineState::Shared)));
        assert_eq!(c.peek(LineAddr(0)), Some(LineState::Shared));
        assert_eq!(c.peek(LineAddr(4)), None);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.fill(LineAddr(0), LineState::Modified);
        c.fill(LineAddr(4), LineState::Shared);
        c.fill(LineAddr(8), LineState::Shared); // evicts 0 (LRU, dirty)
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refill_upgrades_in_place() {
        let mut c = tiny();
        c.fill(LineAddr(0), LineState::Shared);
        assert_eq!(c.fill(LineAddr(0), LineState::Modified), None);
        assert_eq!(c.peek(LineAddr(0)), Some(LineState::Modified));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(LineAddr(3), LineState::Modified);
        assert_eq!(c.invalidate(LineAddr(3)), Some(LineState::Modified));
        assert_eq!(c.invalidate(LineAddr(3)), None);
        assert_eq!(c.peek(LineAddr(3)), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = tiny();
        c.fill(LineAddr(0), LineState::Shared);
        let before = *c.stats();
        c.peek(LineAddr(0));
        c.peek(LineAddr(1));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Fill set 0 beyond capacity; set 1 lines must survive.
        c.fill(LineAddr(1), LineState::Shared);
        for i in 0..4 {
            c.fill(LineAddr(i * 4), LineState::Shared);
        }
        assert_eq!(c.peek(LineAddr(1)), Some(LineState::Shared));
    }

    #[test]
    fn micro50_geometries() {
        assert_eq!(CacheConfig::l1_micro50().num_sets(), 64);
        assert_eq!(CacheConfig::l2_micro50().num_sets(), 512);
        assert_eq!(CacheConfig::l3_micro50().num_sets(), 26214);
    }
}
