//! Determinism and zero-overhead guarantees of the observability layer.
//!
//! Two properties underwrite the whole of OBSERVABILITY.md:
//!
//! 1. metric snapshots are byte-identical regardless of the scheduler's
//!    `--jobs` level (same guarantee `results/*.json` already has);
//! 2. with the `trace` feature disabled, the tracing hooks compile to
//!    literal no-ops — a zero-sized collector and no observable events —
//!    so instrumented hot paths cost nothing in default builds.

use pageforge_bench::scheduler::{run_units, Unit};
use pageforge_obs::trace;
use pageforge_sim::{DedupMode, SimConfig, System};
use pageforge_types::json::ToJson;

/// One snapshot-producing unit per (app, dedup mode) cell: run the full
/// simulation and serialise the aggregated registry snapshot.
fn snapshot_units() -> Vec<Unit<String>> {
    let cells: Vec<(&'static str, DedupMode)> = vec![
        ("silo", DedupMode::None),
        ("silo", DedupMode::Ksm(SimConfig::scaled_ksm())),
        ("silo", DedupMode::PageForge(SimConfig::scaled_pageforge())),
        (
            "masstree",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
        ),
    ];
    cells
        .into_iter()
        .map(|(app, mode)| {
            let label = format!("{app}/{}", mode.label());
            Unit::new("obs", label, move || {
                let (_, snapshot) = System::new(SimConfig::quick(app, mode, 11)).run_observed();
                snapshot.to_json().to_string_compact()
            })
        })
        .collect()
}

#[test]
fn snapshots_are_byte_identical_across_jobs_levels() {
    let two = run_units(2, snapshot_units()).expect("jobs=2 run");
    let four = run_units(4, snapshot_units()).expect("jobs=4 run");
    assert_eq!(two.len(), four.len());
    for (a, b) in two.iter().zip(&four) {
        assert_eq!(a.label, b.label, "submission order must be preserved");
        assert_eq!(a.value, b.value, "snapshot bytes for {}", a.label);
        assert!(
            a.value.starts_with('{'),
            "snapshot serialises as a JSON object"
        );
    }
    // The snapshots are not degenerate: the PageForge cell carries
    // engine metrics the baseline cell lacks.
    assert!(two[2].value.contains("\"engine.comparisons\""));
    assert!(!two[0].value.contains("\"engine.comparisons\""));
}

#[cfg(not(feature = "trace"))]
mod disabled {
    use super::*;

    /// The no-op configuration really is free: the collector is a ZST,
    /// the macro records nothing, and scheduler results carry no events.
    #[test]
    fn tracing_compiles_to_zero_overhead() {
        assert_eq!(std::mem::size_of::<trace::Collector>(), 0);
        assert!(!trace::compiled_in());
        trace::install(trace::Collector::new());
        pageforge_obs::trace_event!(1, "engine", "batch", { comparisons: 31.0 });
        assert!(trace::drain().is_empty());
        assert!(!trace::active());

        let results = run_units(
            1,
            vec![Unit::new("obs", "noop", || {
                pageforge_obs::trace_event!(2, "engine", "batch", { comparisons: 7.0 });
            })],
        )
        .unwrap();
        assert!(results[0].events.is_empty());
    }
}

#[cfg(feature = "trace")]
mod enabled {
    use super::*;

    /// With tracing compiled in, the scheduler captures each unit's
    /// events separately and identically at any jobs level.
    #[test]
    fn scheduler_captures_per_unit_events_deterministically() {
        let mk = || {
            (0..4u64)
                .map(|i| {
                    Unit::new("obs", format!("u{i}"), move || {
                        pageforge_obs::trace_event!(i, "engine", "batch", { unit: i as f64 });
                        i
                    })
                })
                .collect::<Vec<_>>()
        };
        let seq = run_units(1, mk()).unwrap();
        let par = run_units(4, mk()).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.events, b.events, "unit {}", a.label);
            assert_eq!(a.events.len(), 1);
            assert_eq!(a.events[0].cycle, a.value);
        }
    }

    /// A traced simulation emits the documented event kinds.
    #[test]
    fn simulation_emits_documented_event_kinds() {
        trace::install(trace::Collector::new());
        let _ = System::new(SimConfig::quick(
            "silo",
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            11,
        ))
        .run();
        let events = trace::drain();
        trace::uninstall();
        assert!(!events.is_empty());
        for (component, kind) in [
            ("engine", "batch"),
            ("scan_table", "transition"),
            ("dram", "command"),
            ("driver", "refill"),
        ] {
            assert!(
                events
                    .iter()
                    .any(|e| e.component == component && e.kind == kind),
                "expected at least one {component}/{kind} event"
            );
        }
    }
}
