//! Integration tests for the parallel experiment scheduler: the suite's
//! emitted JSON must be byte-identical regardless of `--jobs`, and worker
//! panics must surface as errors through the public API.

use std::fs;
use std::path::{Path, PathBuf};

use pageforge_bench::scheduler::{run_units, Unit};
use pageforge_bench::suite;
use pageforge_bench::BenchArgs;

/// Collects `(file name, bytes)` for every JSON file under `dir`,
/// sorted by name.
fn json_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).expect("read out dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, fs::read(&path).expect("read json")));
        }
    }
    out.sort();
    out
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pageforge-sched-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create out dir");
    dir
}

fn smoke_args(jobs: usize, out_dir: PathBuf) -> BenchArgs {
    BenchArgs {
        smoke: true,
        jobs,
        // A multi-unit subset that exercises fan-out, ordered merge, and
        // the per-profile unit splitting without the cost of the latency
        // suite.
        only: vec!["fig7".into(), "fig8".into(), "table5".into()],
        out_dir,
        ..BenchArgs::default()
    }
}

/// The headline determinism guarantee: `--jobs 4` produces byte-identical
/// result files to `--jobs 1`.
#[test]
fn parallel_results_are_byte_identical_to_sequential() {
    let dir_seq = fresh_dir("seq");
    let dir_par = fresh_dir("par");

    let seq = suite::run_suite(&smoke_args(1, dir_seq.clone())).expect("sequential suite");
    let par = suite::run_suite(&smoke_args(4, dir_par.clone())).expect("parallel suite");
    assert_eq!(seq.timing.jobs, 1);
    assert_eq!(par.timing.jobs, 4);
    assert_eq!(seq.timing.units, par.timing.units);

    suite::print_and_write(&seq, &dir_seq);
    suite::print_and_write(&par, &dir_par);

    let a = json_files(&dir_seq);
    let b = json_files(&dir_par);
    assert!(!a.is_empty(), "suite emitted no JSON files");
    assert_eq!(
        a.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        "file sets differ between jobs=1 and jobs=4"
    );
    for ((name, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "{name} differs between jobs=1 and jobs=4");
    }

    let _ = fs::remove_dir_all(&dir_seq);
    let _ = fs::remove_dir_all(&dir_par);
}

/// A panicking unit fails the whole run with its label, instead of
/// hanging the pool or being silently dropped.
#[test]
fn worker_panic_propagates_as_error() {
    let units: Vec<Unit<u32>> = (0..8)
        .map(|i| {
            Unit::new("panic_test", format!("unit/{i}"), move || {
                if i == 5 {
                    panic!("injected failure");
                }
                i
            })
        })
        .collect();
    let err = run_units(4, units).expect_err("panic must fail the run");
    assert_eq!(err.label, "unit/5");
    assert!(
        err.message.contains("injected failure"),
        "got: {}",
        err.message
    );
}
