//! Micro-benchmarks backing the paper's per-operation claims: page
//! comparison cost, jhash vs ECC key generation (§3.3), red-black tree
//! search (§2.1), Scan-Table batch processing (Table 5), DRAM service,
//! and cache-hierarchy access.
//!
//! Uses a small hand-rolled harness (the build environment has no
//! crates.io access for Criterion): each benchmark is auto-calibrated to
//! ~20 ms per sample, run for 15 samples, and reported as the median
//! ns/op with the interquartile range.

use std::hint::black_box;
use std::time::Instant;

use pageforge_cache::{HierarchyConfig, SystemCaches};
use pageforge_core::fabric::FlatFabric;
use pageforge_core::{EngineConfig, PageForgeEngine, INVALID_INDEX};
use pageforge_ecc::{EccKeyConfig, LineEcc, Secded72};
use pageforge_ksm::rbtree::RbTree;
use pageforge_ksm::{jhash2, page_checksum};
use pageforge_mem::{Dram, DramConfig};
use pageforge_types::{Gfn, LineAddr, PageData, VmId};
use pageforge_vm::HostMemory;

const SAMPLES: usize = 15;
const TARGET_SAMPLE_NANOS: u128 = 20_000_000;

/// Times `f` and prints `group/name: median ns/op (IQR)`.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    // Calibrate: grow the batch until one batch takes ~1/4 of the target.
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t.elapsed().as_nanos().max(1);
        if elapsed >= TARGET_SAMPLE_NANOS / 4 || batch >= 1 << 30 {
            batch = ((batch as u128 * TARGET_SAMPLE_NANOS / elapsed).max(1)) as u64;
            break;
        }
        batch *= 2;
    }
    let mut per_op: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_op[SAMPLES / 2];
    let iqr = per_op[SAMPLES * 3 / 4] - per_op[SAMPLES / 4];
    println!("{group}/{name}: {median:10.1} ns/op  (IQR {iqr:.1}, {batch} iters/sample)");
}

fn page_with_divergence_at(byte: usize) -> (PageData, PageData) {
    let a = PageData::from_fn(|i| (i % 251) as u8);
    let mut b = a.clone();
    b.as_bytes_mut()[byte] ^= 0xFF;
    (a, b)
}

fn bench_page_compare() {
    for &at in &[0usize, 1024, 4095] {
        let (a, b) = page_with_divergence_at(at);
        bench("page_compare", &format!("diverge_at_{at}"), || {
            black_box(a.bytes_examined(black_box(&b)));
        });
    }
    let a = PageData::from_fn(|i| i as u8);
    let b = a.clone();
    bench("page_compare", "identical_full_page", || {
        black_box(a.content_cmp(black_box(&b)));
    });
}

fn bench_hash_keys() {
    let page = PageData::from_fn(|i| (i * 31 % 256) as u8);
    // KSM's key: jhash2 over 1 KB.
    bench("hash_keys", "jhash_1kb", || {
        black_box(page_checksum(black_box(&page)));
    });
    // PageForge's key: ECC minikeys of 4 lines (256 B touched).
    let cfg = EccKeyConfig::default();
    bench("hash_keys", "ecc_key_4_lines", || {
        black_box(cfg.page_key(black_box(&page)));
    });
    let words: Vec<u32> = (0..256).collect();
    bench("hash_keys", "jhash2_256_words", || {
        black_box(jhash2(black_box(&words), 17));
    });
}

fn bench_ecc_codec() {
    bench("ecc_codec", "encode_word", || {
        black_box(Secded72::encode(black_box(0xDEAD_BEEF_0123_4567)));
    });
    let code = Secded72::encode(0xDEAD_BEEF_0123_4567);
    bench("ecc_codec", "decode_clean_word", || {
        black_box(Secded72::decode(black_box(0xDEAD_BEEF_0123_4567), code));
    });
    let line = [0x5Au8; 64];
    bench("ecc_codec", "encode_line", || {
        black_box(LineEcc::encode(black_box(&line)));
    });
}

fn bench_rbtree() {
    bench("rbtree", "insert_1000", || {
        let mut t = RbTree::<u64>::new();
        for i in 0..1000u64 {
            t.insert_ord(i.wrapping_mul(0x9E3779B97F4A7C15));
        }
        black_box(&t);
    });
    let mut tree = RbTree::new();
    for i in 0..10_000u64 {
        tree.insert_ord(i.wrapping_mul(0x9E3779B97F4A7C15));
    }
    let needle = 5_000u64.wrapping_mul(0x9E3779B97F4A7C15);
    bench("rbtree", "find_in_10k", || {
        black_box(tree.find_ord(black_box(&needle)));
    });
}

fn bench_scan_table() {
    // One full-table batch: candidate compared against a 7-node tree.
    let mut mem = HostMemory::new();
    let pages: Vec<_> = (0..8u64)
        .map(|i| {
            mem.map_new_page(
                VmId(0),
                Gfn(i),
                PageData::from_fn(move |j| ((i * 37 + j as u64) % 251) as u8),
            )
        })
        .collect();
    bench("scan_table", "batch_7_entries", || {
        let mut eng = PageForgeEngine::new(EngineConfig::default());
        eng.insert_pfe(pages[7], true, 0);
        for (i, &p) in pages[..7].iter().enumerate() {
            eng.insert_ppn(i as u8, p, INVALID_INDEX, INVALID_INDEX - 1);
        }
        let mut fabric = FlatFabric::all_dram(80);
        black_box(eng.run_batch(&mem, &mut fabric, 0));
    });
}

fn bench_memory_system() {
    let mut dram = Dram::new(DramConfig::micro50());
    let mut t = 0u64;
    let mut addr = 0u64;
    bench("memory_system", "dram_service", || {
        addr = addr.wrapping_add(97) % 1_000_000;
        t += 50;
        black_box(dram.service(LineAddr(addr), t, false));
    });
    let mut caches = SystemCaches::new(HierarchyConfig::micro50(4));
    let mut addr2 = 0u64;
    bench("memory_system", "cache_hierarchy_access", || {
        addr2 = addr2.wrapping_add(13) % 100_000;
        black_box(caches.access(
            (addr2 % 4) as usize,
            LineAddr(addr2),
            addr2.is_multiple_of(5),
        ));
    });
}

fn main() {
    bench_page_compare();
    bench_hash_keys();
    bench_ecc_codec();
    bench_rbtree();
    bench_scan_table();
    bench_memory_system();
}
