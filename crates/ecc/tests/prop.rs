//! Randomized tests for the SECDED codec and ECC hash keys, driven by the
//! vendored deterministic RNG (fixed seeds; rerunning reproduces any
//! failure exactly).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use pageforge_ecc::{Decoded, EccKeyConfig, LineEcc, Secded72};
use pageforge_types::{derive_seed, PageData, LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};

fn rng_for(label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(0xECC, label))
}

/// SEC: any single data-bit flip is corrected back to the original word.
#[test]
fn single_bit_errors_always_corrected() {
    let mut rng = rng_for("single_bit");
    for _ in 0..512 {
        let data = rng.gen::<u64>();
        let bit = rng.gen_range(0u32..64);
        let code = Secded72::encode(data);
        let corrupted = data ^ (1u64 << bit);
        let decoded = Secded72::decode(corrupted, code);
        assert_eq!(decoded.data(), Some(data));
        assert!(matches!(decoded, Decoded::CorrectedData { .. }));
    }
}

/// DED: any double data-bit flip is detected, never miscorrected.
#[test]
fn double_bit_errors_always_detected() {
    let mut rng = rng_for("double_bit");
    for _ in 0..512 {
        let data = rng.gen::<u64>();
        let a = rng.gen_range(0u32..64);
        let b = rng.gen_range(0u32..64);
        if a == b {
            continue;
        }
        let code = Secded72::encode(data);
        let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
        assert_eq!(Secded72::decode(corrupted, code), Decoded::DoubleError);
    }
}

/// Clean words always decode cleanly.
#[test]
fn clean_words_decode_clean() {
    let mut rng = rng_for("clean");
    for _ in 0..512 {
        let data = rng.gen::<u64>();
        let code = Secded72::encode(data);
        assert_eq!(Secded72::decode(data, code), Decoded::Clean(data));
    }
}

/// Single check-bit flips never change the data.
#[test]
fn check_bit_flips_leave_data_intact() {
    let mut rng = rng_for("check_bit");
    for _ in 0..512 {
        let data = rng.gen::<u64>();
        let bit = rng.gen_range(0u32..8);
        let code = Secded72::encode(data);
        let corrupted = pageforge_ecc::EccCode(u8::from(code) ^ (1 << bit));
        let decoded = Secded72::decode(data, corrupted);
        assert_eq!(decoded.data(), Some(data));
    }
}

/// One data-bit plus one check-bit flip is a double error.
#[test]
fn mixed_double_errors_detected() {
    let mut rng = rng_for("mixed_double");
    for _ in 0..512 {
        let data = rng.gen::<u64>();
        let dbit = rng.gen_range(0u32..64);
        let cbit = rng.gen_range(0u32..8);
        let code = Secded72::encode(data);
        let corrupted_code = pageforge_ecc::EccCode(u8::from(code) ^ (1 << cbit));
        let corrupted_data = data ^ (1u64 << dbit);
        assert_eq!(
            Secded72::decode(corrupted_data, corrupted_code),
            Decoded::DoubleError
        );
    }
}

/// ECC code is a (linear) function of the data: equal words, equal codes.
#[test]
fn encode_is_deterministic() {
    let mut rng = rng_for("deterministic");
    for _ in 0..512 {
        let data = rng.gen::<u64>();
        assert_eq!(Secded72::encode(data), Secded72::encode(data));
    }
}

/// The ECC of a line tracks each word independently.
#[test]
fn line_ecc_word_independence() {
    let mut rng = rng_for("word_independence");
    for _ in 0..128 {
        let mut line = vec![0u8; LINE_SIZE];
        rng.fill_bytes(&mut line);
        let w = rng.gen_range(0usize..8);
        let ecc = LineEcc::encode(&line);
        let mut other = line.clone();
        // Flip a bit in word w; only that word's code may change.
        other[w * 8] ^= 1;
        let ecc2 = LineEcc::encode(&other);
        for k in 0..8 {
            if k != w {
                assert_eq!(ecc.0[k], ecc2.0[k]);
            }
        }
        assert_ne!(ecc.0[w], ecc2.0[w]);
    }
}

/// Key is insensitive to changes outside its sampled lines, and changes
/// to word 0 of a sampled line always change the key.
#[test]
fn key_sensitivity() {
    let mut rng = rng_for("key_sensitivity");
    for _ in 0..256 {
        let off_choice = rng.gen_range(0usize..4);
        let poke = rng.gen_range(0usize..PAGE_SIZE);
        let cfg = EccKeyConfig::default();
        let base = PageData::zeroed();
        let sampled_line = cfg.offsets()[off_choice];

        // Change word 0 of a sampled line → key must change.
        let mut hit = base.clone();
        hit.line_mut(sampled_line)[0] ^= 0xFF;
        assert_ne!(cfg.page_key(&base), cfg.page_key(&hit));

        // Change any byte in a line that is not sampled → key unchanged.
        let poke_line = poke / LINE_SIZE;
        if !cfg.offsets().contains(&poke_line) {
            let mut miss = base.clone();
            miss.as_bytes_mut()[poke] ^= 0xFF;
            assert_eq!(cfg.page_key(&base), cfg.page_key(&miss));
        }
    }
}

/// Builder fed in a random order produces the same key as the direct
/// computation.
#[test]
fn builder_order_invariance() {
    let mut rng = rng_for("builder_order");
    for _ in 0..64 {
        let mut seedbytes = vec![0u8; 16];
        rng.fill_bytes(&mut seedbytes);
        let page = PageData::from_fn(|i| seedbytes[i % seedbytes.len()].wrapping_mul(i as u8));
        let cfg = EccKeyConfig::default();
        let mut order: Vec<usize> = (0..LINES_PER_PAGE).collect();
        // Fisher–Yates driven by the test RNG.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0usize..i + 1);
            order.swap(i, j);
        }
        let mut b = cfg.builder();
        for &line in &order {
            b.observe(line, LineEcc::encode(page.line(line)));
        }
        assert_eq!(b.finish(), Some(cfg.page_key(&page)));
    }
}
