//! Fleet-scale deduplication control plane.
//!
//! Everything else in this repository drives **one** host. This crate
//! runs *N* of them: each [`Host`] owns the same substrate a single-host
//! simulation wraps (guest memory, a PageForge driver/engine pair, a
//! memory fabric), and a [`ControlPlane`] schedules a seeded serverless
//! churn workload over the fleet — thousands of short-lived micro-VM
//! instances ([`pageforge_workloads::serverless`]) arriving onto the
//! least-loaded host, departing when their lifetime expires, and
//! live-migrating under a periodic rebalancing policy. Scan work flows
//! through each host's **bounded queue**; when a host's merge pipeline
//! falls behind, the queue rejects and the control plane parks the work
//! under a deterministic lease with exponential-backoff retries.
//!
//! The run is a pure function of its [`FleetConfig`] (seed included):
//! byte-identical across `--jobs` and `--shards`, with or without a
//! fault plan. DESIGN.md §10 gives the architecture and the determinism
//! argument; OBSERVABILITY.md documents the `fleet.*` metrics and the
//! `fleet` trace events; EXPERIMENTS.md covers the serverless-churn
//! experiment built on top.
//!
//! ```
//! use pageforge_fleet::{ControlPlane, FleetConfig};
//!
//! let mut cfg = FleetConfig::smoke(42);
//! cfg.ticks = 40; // keep the doctest fast
//! let (result, snapshot) = ControlPlane::new(cfg.clone()).run(2);
//! assert!(result.arrivals > 0);
//! assert_eq!(snapshot.gauge("fleet.hosts"), Some(4.0));
//! // Same config, different worker count: same bytes.
//! let (again, _) = ControlPlane::new(cfg).run(4);
//! assert_eq!(result, again);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod host;
pub mod plane;
pub mod result;

pub use config::FleetConfig;
pub use host::{Host, HostTickReport, ScanJob};
pub use plane::ControlPlane;
pub use result::{FleetDegraded, FleetResult};
