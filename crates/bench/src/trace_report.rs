//! Folds a JSONL trace (written by `run_all --trace`) into per-component
//! cycle and energy attribution tables.
//!
//! Each trace line is one [`pageforge_obs::trace::OwnedTraceEvent`]. The
//! fold groups events by `(component, kind)`, sums each group's cycle
//! cost (the `cycles` / `latency` / `queue_wait` payload field, whichever
//! the emitter uses), and converts busy cycles into energy using the
//! Table 5 power model from [`pageforge_core::power`]:
//!
//! * `engine` events run on the PageForge module (Scan Table + ALU);
//! * `ksm` events run on one of the server chip's OoO cores (the
//!   software baseline the paper compares against);
//! * `dram` / `scan_table` / `driver` events are counted and their
//!   cycles attributed, but no per-event energy model exists for them —
//!   their energy column reads `—`.
//!
//! The result is written to `<out>/meta/trace_attribution.json` —
//! deliberately *outside* the `results/*.json` determinism glob, since a
//! trace exists only when the `trace` feature was enabled — and rendered
//! into REPORT.md by `make_report`.

use std::path::Path;

use pageforge_core::power::PowerModel;
use pageforge_obs::trace::parse_line;
use pageforge_types::json::{self, obj, FromJson, ToJson, Value};

use crate::report::Table;

/// Cycles per second of the simulated CPU (Table 2: 2 GHz).
const CPU_HZ: f64 = 2e9;

/// Scan Table capacity in bytes used for the power model (the paper's
/// ≈260 B table, provisioned as 512 B SRAM).
const SCAN_TABLE_BYTES: usize = 260;

/// One `(component, kind)` row of the attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Emitting component (`engine`, `ksm`, `dram`, ...).
    pub component: String,
    /// Event kind within the component.
    pub kind: String,
    /// Number of events in the group.
    pub events: u64,
    /// Summed cycle cost across the group (0 when the kind carries no
    /// cost field — e.g. Scan Table transitions, which are markers).
    pub cycles: f64,
    /// Energy in millijoules, when a power model covers the component.
    pub energy_mj: Option<f64>,
}

/// The folded trace: attribution rows plus parse accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAttribution {
    /// Rows in first-appearance order.
    pub rows: Vec<AttributionRow>,
    /// Total events parsed.
    pub total_events: u64,
    /// Lines that failed to parse (should be 0 for a well-formed trace).
    pub unparsed_lines: u64,
}

/// The payload field carrying a group's cycle cost, by emitter
/// convention: `cycles` for batch-level events, `latency` for DRAM
/// commands.
fn cost_field(event: &pageforge_obs::trace::OwnedTraceEvent) -> f64 {
    event
        .field("cycles")
        .or_else(|| event.field("latency"))
        .unwrap_or(0.0)
}

/// Average power (W) attributed to busy cycles of `component`, if the
/// Table 5 model covers it.
fn component_power_w(component: &str) -> Option<f64> {
    let model = PowerModel::hp_22nm();
    match component {
        "engine" => Some(model.pageforge_module(SCAN_TABLE_BYTES).power_w),
        // Software KSM occupies one of the 10 OoO server cores.
        "ksm" => Some(PowerModel::server_chip().power_w / 10.0),
        _ => None,
    }
}

impl TraceAttribution {
    /// Folds an iterator of JSONL lines into the attribution.
    pub fn fold_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Self {
        let mut out = TraceAttribution::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let Some(event) = parse_line(line) else {
                out.unparsed_lines += 1;
                continue;
            };
            out.total_events += 1;
            let cost = cost_field(&event);
            match out
                .rows
                .iter_mut()
                .find(|r| r.component == event.component && r.kind == event.kind)
            {
                Some(row) => {
                    row.events += 1;
                    row.cycles += cost;
                }
                None => out.rows.push(AttributionRow {
                    component: event.component.clone(),
                    kind: event.kind,
                    events: 1,
                    cycles: cost,
                    energy_mj: None,
                }),
            }
        }
        // Energy follows from the final cycle totals.
        for row in &mut out.rows {
            row.energy_mj =
                component_power_w(&row.component).map(|watts| row.cycles / CPU_HZ * watts * 1e3);
        }
        out
    }

    /// Folds a JSONL file from disk.
    pub fn fold_file(path: &Path) -> std::io::Result<Self> {
        let raw = std::fs::read_to_string(path)?;
        Ok(Self::fold_lines(raw.lines()))
    }

    /// Renders the attribution as a printable [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Trace attribution: {} events ({} unparsed lines)",
                self.total_events, self.unparsed_lines
            ),
            &["Component", "Kind", "Events", "Cycles", "Energy (mJ)"],
        );
        for r in &self.rows {
            t.row(vec![
                r.component.clone(),
                r.kind.clone(),
                r.events.to_string(),
                format!("{:.0}", r.cycles),
                r.energy_mj
                    .map_or_else(|| "—".to_owned(), |e| format!("{e:.4}")),
            ]);
        }
        t
    }

    /// Writes the attribution to `<out_dir>/meta/trace_attribution.json`
    /// (best-effort, like the scheduler's timing record).
    pub fn write(&self, out_dir: &Path) {
        let dir = out_dir.join("meta");
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|_| {
            std::fs::write(
                dir.join("trace_attribution.json"),
                self.to_json().to_string_pretty(),
            )
        }) {
            eprintln!("warning: could not write trace attribution: {e}");
        }
    }

    /// Reads an attribution written by [`TraceAttribution::write`].
    pub fn read(out_dir: &Path) -> Option<Self> {
        let raw =
            std::fs::read_to_string(out_dir.join("meta").join("trace_attribution.json")).ok()?;
        Self::from_json(&json::parse(&raw).ok()?)
    }
}

/// Writes per-unit trace events as one JSONL stream in submission order.
/// Each unit is preceded by a `bench/unit_start` marker event carrying
/// the unit's submission index, so a reader can segment the stream; the
/// unit labels print alongside on stderr.
pub fn write_trace_jsonl(
    path: &Path,
    traces: &[(String, Vec<pageforge_obs::TraceEvent>)],
) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for (index, (label, events)) in traces.iter().enumerate() {
        let marker = pageforge_obs::TraceEvent::new(
            0,
            "bench",
            "unit_start",
            vec![("index", index as f64), ("events", events.len() as f64)],
        );
        writeln!(file, "{}", marker.to_json().to_string_compact())?;
        eprintln!("  trace: unit {index} = {label} ({} events)", events.len());
        for event in events {
            writeln!(file, "{}", event.to_json().to_string_compact())?;
        }
    }
    Ok(())
}

/// Folds the per-unit spool files written by
/// [`crate::scheduler::run_units_spooled`] into the final single-stream
/// JSONL at `path`, in submission order, with the same `bench/unit_start`
/// markers as [`write_trace_jsonl`]. The spool files (and `spool_dir`
/// itself, when emptied) are removed afterwards. Returns the total
/// number of unit events assembled (markers excluded).
pub fn assemble_spooled_trace(
    path: &Path,
    spool_dir: &Path,
    labels: &[String],
) -> std::io::Result<u64> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut total: u64 = 0;
    for (index, label) in labels.iter().enumerate() {
        let spool = crate::scheduler::spool_path(spool_dir, index);
        // Units that emitted nothing created no spool file.
        let raw = match std::fs::read_to_string(&spool) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let events = raw.lines().filter(|l| !l.trim().is_empty()).count();
        let marker = pageforge_obs::TraceEvent::new(
            0,
            "bench",
            "unit_start",
            vec![("index", index as f64), ("events", events as f64)],
        );
        writeln!(file, "{}", marker.to_json().to_string_compact())?;
        eprintln!("  trace: unit {index} = {label} ({events} events)");
        for line in raw.lines().filter(|l| !l.trim().is_empty()) {
            writeln!(file, "{line}")?;
        }
        total += events as u64;
        if !raw.is_empty() {
            std::fs::remove_file(&spool)?;
        }
    }
    // Best-effort: the directory may hold unrelated files if reused.
    let _ = std::fs::remove_dir(spool_dir);
    Ok(total)
}

impl ToJson for AttributionRow {
    fn to_json(&self) -> Value {
        let mut members = vec![
            ("component".to_owned(), self.component.to_json()),
            ("kind".to_owned(), self.kind.to_json()),
            ("events".to_owned(), self.events.to_json()),
            ("cycles".to_owned(), self.cycles.to_json()),
        ];
        if let Some(e) = self.energy_mj {
            members.push(("energy_mj".to_owned(), e.to_json()));
        }
        Value::Obj(members)
    }
}

impl FromJson for AttributionRow {
    fn from_json(value: &Value) -> Option<Self> {
        Some(AttributionRow {
            component: String::from_json(value.get("component")?)?,
            kind: String::from_json(value.get("kind")?)?,
            events: u64::from_json(value.get("events")?)?,
            cycles: f64::from_json(value.get("cycles")?)?,
            energy_mj: value.get("energy_mj").and_then(f64::from_json),
        })
    }
}

impl ToJson for TraceAttribution {
    fn to_json(&self) -> Value {
        obj([
            ("rows", self.rows.to_json()),
            ("total_events", self.total_events.to_json()),
            ("unparsed_lines", self.unparsed_lines.to_json()),
        ])
    }
}

impl FromJson for TraceAttribution {
    fn from_json(value: &Value) -> Option<Self> {
        Some(TraceAttribution {
            rows: Vec::from_json(value.get("rows")?)?,
            total_events: u64::from_json(value.get("total_events")?)?,
            unparsed_lines: u64::from_json(value.get("unparsed_lines")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pageforge_obs::TraceEvent;

    fn sample_lines() -> Vec<String> {
        [
            TraceEvent::new(100, "engine", "batch", vec![("cycles", 5000.0)]),
            TraceEvent::new(200, "engine", "batch", vec![("cycles", 7000.0)]),
            TraceEvent::new(150, "dram", "command", vec![("latency", 80.0)]),
            TraceEvent::new(150, "scan_table", "transition", vec![("ptr", 3.0)]),
            TraceEvent::new(900, "ksm", "batch", vec![("cycles", 20000.0)]),
        ]
        .iter()
        .map(|e| e.to_json().to_string_compact())
        .collect()
    }

    #[test]
    fn fold_groups_by_component_and_kind() {
        let lines = sample_lines();
        let attr = TraceAttribution::fold_lines(lines.iter().map(String::as_str));
        assert_eq!(attr.total_events, 5);
        assert_eq!(attr.unparsed_lines, 0);
        let engine = attr
            .rows
            .iter()
            .find(|r| r.component == "engine")
            .expect("engine row");
        assert_eq!(engine.events, 2);
        assert!((engine.cycles - 12_000.0).abs() < 1e-9);
        // 12k cycles at 2 GHz on a 0.037 W module: ~2.2e-4 mJ.
        let energy = engine.energy_mj.expect("engine has a power model");
        assert!(energy > 0.0 && energy < 1e-2, "{energy}");
        // Scan Table transitions are markers: counted, zero cycles, no
        // energy model.
        let st = attr
            .rows
            .iter()
            .find(|r| r.component == "scan_table")
            .unwrap();
        assert_eq!(st.cycles, 0.0);
        assert!(st.energy_mj.is_none());
        // KSM burns far more energy per cycle than the module (§6.4.2).
        let ksm = attr.rows.iter().find(|r| r.component == "ksm").unwrap();
        assert!(ksm.energy_mj.unwrap() > energy);
    }

    #[test]
    fn fold_counts_unparsed_lines() {
        let lines = [
            "not json",
            "{\"cycle\":1,\"component\":\"a\",\"kind\":\"b\"}",
        ];
        let attr = TraceAttribution::fold_lines(lines.iter().copied());
        assert_eq!(attr.total_events, 1);
        assert_eq!(attr.unparsed_lines, 1);
    }

    #[test]
    fn attribution_roundtrips_through_json() {
        let lines = sample_lines();
        let attr = TraceAttribution::fold_lines(lines.iter().map(String::as_str));
        let back =
            TraceAttribution::from_json(&json::parse(&attr.to_json().to_string_pretty()).unwrap());
        assert_eq!(back, Some(attr));
    }

    #[test]
    fn jsonl_writer_emits_markers_and_parses_back() {
        let dir = std::env::temp_dir().join("pageforge-trace-report-test");
        let path = dir.join("trace.jsonl");
        let traces = vec![
            (
                "fig7/img_dnn".to_owned(),
                vec![TraceEvent::new(
                    5,
                    "engine",
                    "batch",
                    vec![("cycles", 10.0)],
                )],
            ),
            ("fig7/silo".to_owned(), vec![]),
        ];
        write_trace_jsonl(&path, &traces).unwrap();
        let attr = TraceAttribution::fold_file(&path).unwrap();
        // 2 markers + 1 event, all parseable.
        assert_eq!(attr.unparsed_lines, 0);
        assert_eq!(attr.total_events, 3);
        let markers = attr
            .rows
            .iter()
            .find(|r| r.component == "bench" && r.kind == "unit_start")
            .unwrap();
        assert_eq!(markers.events, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spool_assembly_matches_jsonl_writer_shape() {
        let dir = std::env::temp_dir().join("pageforge-spool-assembly-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spool_dir = dir.join("trace.jsonl.spool.d");
        std::fs::create_dir_all(&spool_dir).unwrap();
        // Unit 0 spooled two events; unit 1 emitted nothing (no file).
        std::fs::write(
            crate::scheduler::spool_path(&spool_dir, 0),
            [
                TraceEvent::new(5, "engine", "batch", vec![("cycles", 10.0)]),
                TraceEvent::new(9, "dram", "command", vec![("latency", 80.0)]),
            ]
            .iter()
            .map(|e| e.to_json().to_string_compact() + "\n")
            .collect::<String>(),
        )
        .unwrap();
        let path = dir.join("trace.jsonl");
        let labels = vec!["fig7/img_dnn".to_owned(), "fig7/silo".to_owned()];
        let total = assemble_spooled_trace(&path, &spool_dir, &labels).unwrap();
        assert_eq!(total, 2);
        // Spool files are consumed and the directory removed.
        assert!(!spool_dir.exists());
        let attr = TraceAttribution::fold_file(&path).unwrap();
        assert_eq!(attr.unparsed_lines, 0);
        // 2 markers + 2 events.
        assert_eq!(attr.total_events, 4);
        let markers = attr
            .rows
            .iter()
            .find(|r| r.component == "bench" && r.kind == "unit_start")
            .unwrap();
        assert_eq!(markers.events, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
