//! Content-indexed page trees: the KSM *stable* and *unstable* trees.
//!
//! Both trees are red-black trees "indexed by the contents of the page"
//! (§2.1): walking left when the probe page compares smaller than the node's
//! page and right when it compares greater. Nodes do not store page
//! contents — they store frame references, and every visit re-reads the
//! frame through [`HostMemory`], charging the comparison cost to the
//! caller's [`KsmWork`] record.
//!
//! Unstable-tree nodes are not write-protected, so their pages may change or
//! vanish; stale nodes are detected via allocation epochs and pruned during
//! walks, as the kernel does.

use pageforge_types::{Gfn, PageData, Ppn, VmId};
use pageforge_vm::HostMemory;

use crate::cost::KsmWork;
use crate::rbtree::{NodeId, RbTree, Side};

/// A reference to a guest page held in a tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRef {
    /// The host frame at insertion time.
    pub ppn: Ppn,
    /// The frame's allocation epoch at insertion time (stale detection).
    pub epoch: u64,
    /// A guest mapping of the frame at insertion time.
    pub vm: VmId,
    /// See `vm`.
    pub gfn: Gfn,
}

impl PageRef {
    /// Captures a reference to the frame currently backing `(vm, gfn)`.
    ///
    /// Returns `None` if the guest page is unmapped.
    pub fn capture(mem: &HostMemory, vm: VmId, gfn: Gfn) -> Option<PageRef> {
        let ppn = mem.translate(vm, gfn)?;
        let epoch = mem.frame_epoch(ppn)?;
        Some(PageRef {
            ppn,
            epoch,
            vm,
            gfn,
        })
    }
}

/// Which of KSM's two trees this is; controls node validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Merged, CoW-protected pages. A node is valid while its frame is
    /// still the same allocation (contents are immutable under CoW).
    Stable,
    /// Scanned-but-unmerged pages. A node is valid while the captured
    /// guest mapping still points at the same allocation; contents may
    /// have changed (that is what makes the tree unstable).
    Unstable,
}

/// Result of [`PageTree::search_or_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchInsert {
    /// A node with identical content was found.
    FoundEqual(NodeId),
    /// No equal node; the probe was inserted and its new node returned.
    Inserted(NodeId),
}

/// A content-indexed red-black tree of page references.
#[derive(Debug, Clone)]
pub struct PageTree {
    tree: RbTree<PageRef>,
    kind: TreeKind,
    stale_pruned: u64,
}

impl PageTree {
    /// Creates an empty tree of the given kind.
    pub fn new(kind: TreeKind) -> Self {
        PageTree {
            tree: RbTree::new(),
            kind,
            stale_pruned: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The tree kind.
    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    /// Stale nodes pruned during walks, cumulative.
    pub fn stale_pruned(&self) -> u64 {
        self.stale_pruned
    }

    /// Height of the tree: nodes on the longest root-to-leaf path.
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Cumulative rebalancing rotations (survives [`clear`](Self::clear)).
    pub fn rotations(&self) -> u64 {
        self.tree.rotations()
    }

    /// Drops every node (the per-pass unstable reset).
    pub fn clear(&mut self) {
        self.tree.clear();
    }

    /// Read-only access to the underlying red-black tree, for callers that
    /// drive their own traversals (the PageForge Scan Table loader walks
    /// this in breadth-first order).
    pub fn raw(&self) -> &RbTree<PageRef> {
        &self.tree
    }

    /// Whether the referenced page is still the one the node captured.
    pub fn node_is_valid(&self, mem: &HostMemory, node: &PageRef) -> bool {
        match self.kind {
            TreeKind::Stable => mem.frame_epoch(node.ppn) == Some(node.epoch),
            TreeKind::Unstable => {
                mem.frame_epoch(node.ppn) == Some(node.epoch)
                    && mem.translate(node.vm, node.gfn) == Some(node.ppn)
            }
        }
    }

    /// Removes a node by handle (e.g. after an unstable-tree merge).
    pub fn remove(&mut self, id: NodeId) -> PageRef {
        self.tree.remove(id)
    }

    /// Links `me` at an externally-determined position (the PageForge OS
    /// driver learns insertion points from the hardware walk, so it never
    /// re-compares pages in software). The caller guarantees the position
    /// is content-correct.
    ///
    /// # Panics
    ///
    /// Panics if the child slot is occupied or `parent` is `None` on a
    /// non-empty tree.
    pub fn insert_at(&mut self, parent: Option<NodeId>, side: Side, me: PageRef) -> NodeId {
        self.tree.insert_at(parent, side, me)
    }

    /// Prunes a node the caller observed to be stale. Counted like walk
    /// pruning.
    pub fn prune(&mut self, id: NodeId) -> PageRef {
        self.stale_pruned += 1;
        self.tree.remove(id)
    }

    /// The page reference stored at `id`.
    pub fn node(&self, id: NodeId) -> &PageRef {
        self.tree.value(id)
    }

    /// Searches for a node whose page content equals `probe`, pruning stale
    /// nodes along the way. Comparison costs are charged to `work`.
    pub fn search(
        &mut self,
        mem: &HostMemory,
        probe: &PageData,
        probe_ppn: Ppn,
        work: &mut KsmWork,
    ) -> Option<NodeId> {
        match self.walk(mem, probe, probe_ppn, work) {
            WalkEnd::Equal(id) => Some(id),
            WalkEnd::Leaf { .. } => None,
        }
    }

    /// Searches for an equal node; if none exists, inserts `me` at the
    /// position the walk reached.
    pub fn search_or_insert(
        &mut self,
        mem: &HostMemory,
        probe: &PageData,
        probe_ppn: Ppn,
        me: PageRef,
        work: &mut KsmWork,
    ) -> SearchInsert {
        match self.walk(mem, probe, probe_ppn, work) {
            WalkEnd::Equal(id) => SearchInsert::FoundEqual(id),
            WalkEnd::Leaf { parent, side } => {
                work.tree_ops += 1;
                SearchInsert::Inserted(self.tree.insert_at(parent, side, me))
            }
        }
    }

    /// Inserts `me` unconditionally at its content position (used when
    /// promoting a freshly merged page into the stable tree). If an equal
    /// node already exists, returns it instead of inserting a duplicate.
    pub fn insert(
        &mut self,
        mem: &HostMemory,
        probe: &PageData,
        me: PageRef,
        work: &mut KsmWork,
    ) -> NodeId {
        match self.search_or_insert(mem, probe, me.ppn, me, work) {
            SearchInsert::FoundEqual(id) | SearchInsert::Inserted(id) => id,
        }
    }

    /// Core walk: descends by content comparison, restarting after pruning
    /// a stale node. Terminates because every restart strictly shrinks the
    /// tree.
    fn walk(
        &mut self,
        mem: &HostMemory,
        probe: &PageData,
        probe_ppn: Ppn,
        work: &mut KsmWork,
    ) -> WalkEnd {
        'restart: loop {
            let mut parent = None;
            let mut side = Side::Left;
            let mut cur = self.tree.root();
            while let Some(id) = cur {
                work.tree_ops += 1;
                let node = *self.tree.value(id);
                if !self.node_is_valid(mem, &node) {
                    self.tree.remove(id);
                    self.stale_pruned += 1;
                    continue 'restart;
                }
                let node_data = mem.frame_data(node.ppn).expect("valid node frame exists");
                // Charge the byte-by-byte comparison: both pages stream
                // through the core's caches up to the diverging byte. One
                // fused pass yields the ordering and the byte count.
                let (ordering, bytes) = probe.cmp_and_bytes_examined(node_data);
                let lines = (bytes as u32).div_ceil(64);
                work.comparisons += 1;
                work.cmp_bytes += bytes as u64;
                work.touched.push((node.ppn, lines));
                work.touched.push((probe_ppn, lines));
                match ordering {
                    std::cmp::Ordering::Less => {
                        parent = Some(id);
                        side = Side::Left;
                        cur = self.tree.left(id);
                    }
                    std::cmp::Ordering::Greater => {
                        parent = Some(id);
                        side = Side::Right;
                        cur = self.tree.right(id);
                    }
                    std::cmp::Ordering::Equal => return WalkEnd::Equal(id),
                }
            }
            return WalkEnd::Leaf { parent, side };
        }
    }
}

enum WalkEnd {
    Equal(NodeId),
    Leaf { parent: Option<NodeId>, side: Side },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> PageData {
        PageData::from_fn(|i| b.wrapping_add((i % 3) as u8))
    }

    fn setup(pages: &[u8]) -> (HostMemory, Vec<(VmId, Gfn, Ppn)>) {
        let mut mem = HostMemory::new();
        let mut refs = Vec::new();
        for (i, &b) in pages.iter().enumerate() {
            let vm = VmId(0);
            let gfn = Gfn(i as u64);
            let ppn = mem.map_new_page(vm, gfn, page(b));
            refs.push((vm, gfn, ppn));
        }
        (mem, refs)
    }

    fn insert_all(tree: &mut PageTree, mem: &HostMemory, refs: &[(VmId, Gfn, Ppn)]) {
        let mut work = KsmWork::new();
        for &(vm, gfn, ppn) in refs {
            let me = PageRef::capture(mem, vm, gfn).unwrap();
            let data = mem.frame_data(ppn).unwrap().clone();
            tree.search_or_insert(mem, &data, ppn, me, &mut work);
        }
    }

    #[test]
    fn search_finds_equal_content() {
        let (mut mem, refs) = setup(&[10, 20, 30, 40, 50]);
        let mut tree = PageTree::new(TreeKind::Unstable);
        insert_all(&mut tree, &mem, &refs);
        assert_eq!(tree.len(), 5);
        // A new page equal to content 30 must be found.
        let probe_ppn = mem.map_new_page(VmId(1), Gfn(0), page(30));
        let probe = mem.frame_data(probe_ppn).unwrap().clone();
        let mut work = KsmWork::new();
        let hit = tree.search(&mem, &probe, probe_ppn, &mut work);
        assert!(hit.is_some());
        assert_eq!(mem.frame_data(tree.node(hit.unwrap()).ppn).unwrap(), &probe);
        assert!(work.comparisons >= 1);
        assert!(work.cmp_bytes >= 4096, "full compare on the equal node");
    }

    #[test]
    fn search_misses_absent_content() {
        let (mut mem, refs) = setup(&[10, 20, 30]);
        let mut tree = PageTree::new(TreeKind::Unstable);
        insert_all(&mut tree, &mem, &refs);
        let probe_ppn = mem.map_new_page(VmId(1), Gfn(0), page(25));
        let probe = mem.frame_data(probe_ppn).unwrap().clone();
        let mut work = KsmWork::new();
        assert_eq!(tree.search(&mem, &probe, probe_ppn, &mut work), None);
    }

    #[test]
    fn search_or_insert_inserts_once() {
        let (mem, _) = setup(&[]);
        let mut mem = mem;
        let ppn = mem.map_new_page(VmId(0), Gfn(0), page(1));
        let me = PageRef::capture(&mem, VmId(0), Gfn(0)).unwrap();
        let data = mem.frame_data(ppn).unwrap().clone();
        let mut tree = PageTree::new(TreeKind::Unstable);
        let mut work = KsmWork::new();
        let first = tree.search_or_insert(&mem, &data, ppn, me, &mut work);
        assert!(matches!(first, SearchInsert::Inserted(_)));
        let second = tree.search_or_insert(&mem, &data, ppn, me, &mut work);
        assert!(matches!(second, SearchInsert::FoundEqual(_)));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn unstable_node_goes_stale_on_cow_break() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(5));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(5));
        let mut tree = PageTree::new(TreeKind::Unstable);
        let me = PageRef::capture(&mem, VmId(0), Gfn(0)).unwrap();
        let data = mem.frame_data(a).unwrap().clone();
        let mut work = KsmWork::new();
        tree.search_or_insert(&mem, &data, a, me, &mut work);
        // Merge a and b, then the node's captured frame is gone (freed).
        mem.merge_into(b, a).unwrap();
        let node = *tree.node(tree.raw().root().unwrap());
        assert!(!tree.node_is_valid(&mem, &node));
        // A subsequent search prunes it.
        let probe_ppn = mem.map_new_page(VmId(2), Gfn(0), page(5));
        let probe = mem.frame_data(probe_ppn).unwrap().clone();
        let hit = tree.search(&mem, &probe, probe_ppn, &mut work);
        assert_eq!(hit, None);
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.stale_pruned(), 1);
    }

    #[test]
    fn unstable_node_tolerates_content_change() {
        // Content changes do NOT make an unstable node stale — the mapping
        // is intact; the tree is simply mis-ordered (that's why it is
        // "unstable" and rebuilt every pass).
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(5));
        let mut tree = PageTree::new(TreeKind::Unstable);
        let me = PageRef::capture(&mem, VmId(0), Gfn(0)).unwrap();
        let data = mem.frame_data(a).unwrap().clone();
        let mut work = KsmWork::new();
        tree.search_or_insert(&mem, &data, a, me, &mut work);
        mem.guest_write(VmId(0), Gfn(0), 0, &[0xFF]);
        let node = *tree.node(tree.raw().root().unwrap());
        assert!(tree.node_is_valid(&mem, &node));
    }

    #[test]
    fn stable_node_valid_while_frame_lives() {
        let mut mem = HostMemory::new();
        let a = mem.map_new_page(VmId(0), Gfn(0), page(5));
        let b = mem.map_new_page(VmId(1), Gfn(0), page(5));
        mem.merge_into(a, b).unwrap();
        let mut tree = PageTree::new(TreeKind::Stable);
        let me = PageRef::capture(&mem, VmId(0), Gfn(0)).unwrap();
        let data = mem.frame_data(a).unwrap().clone();
        let mut work = KsmWork::new();
        tree.search_or_insert(&mem, &data, a, me, &mut work);
        let node = *tree.node(tree.raw().root().unwrap());
        assert!(tree.node_is_valid(&mem, &node));
        // One mapper breaks off: frame still lives, node still valid.
        mem.guest_write(VmId(0), Gfn(0), 0, &[9]);
        assert!(tree.node_is_valid(&mem, &node));
        // Last mapper breaks off: frame freed, node stale.
        mem.guest_write(VmId(1), Gfn(0), 0, &[9]);
        assert!(!tree.node_is_valid(&mem, &node));
    }

    #[test]
    fn walk_costs_scale_with_divergence_point() {
        let mut mem = HostMemory::new();
        // Two pages diverging at the very first byte.
        let a = mem.map_new_page(VmId(0), Gfn(0), PageData::from_fn(|_| 1));
        let mut tree = PageTree::new(TreeKind::Unstable);
        let me = PageRef::capture(&mem, VmId(0), Gfn(0)).unwrap();
        let data = mem.frame_data(a).unwrap().clone();
        let mut work = KsmWork::new();
        tree.search_or_insert(&mem, &data, a, me, &mut work);

        let probe_ppn = mem.map_new_page(VmId(1), Gfn(0), PageData::from_fn(|_| 2));
        let probe = mem.frame_data(probe_ppn).unwrap().clone();
        let mut cheap = KsmWork::new();
        tree.search(&mem, &probe, probe_ppn, &mut cheap);
        assert_eq!(cheap.cmp_bytes, 1, "diverges at byte 0 → 1 byte examined");

        // A page diverging only in the last byte costs a full page compare.
        let mut late = PageData::from_fn(|_| 1);
        late.as_bytes_mut()[4095] = 0;
        let late_ppn = mem.map_new_page(VmId(2), Gfn(0), late.clone());
        let mut expensive = KsmWork::new();
        tree.search(&mem, &late, late_ppn, &mut expensive);
        assert_eq!(expensive.cmp_bytes, 4096);
    }

    #[test]
    fn clear_empties_tree() {
        let (mem, refs) = setup(&[1, 2, 3]);
        let mut tree = PageTree::new(TreeKind::Unstable);
        insert_all(&mut tree, &mem, &refs);
        tree.clear();
        assert!(tree.is_empty());
    }
}
