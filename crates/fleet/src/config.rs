//! Fleet scenario configuration.

use pageforge_core::PageForgeConfig;
use pageforge_faults::{FaultPlan, FleetFaultPlan};
use pageforge_workloads::FunctionSpec;

/// Everything a fleet run is a pure function of (together with its
/// `seed`): the host count, the serverless workload family, the
/// placement/migration policy knobs, and the per-host backpressure
/// limits. See DESIGN.md §10 for the lifecycle these knobs govern.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Human-readable label carried into the result (e.g. `"fleet d4"`).
    pub label: String,
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Control-plane ticks to run.
    pub ticks: u64,
    /// Simulated cycles per control-plane tick (trace stamps and
    /// migration-cost accounting).
    pub tick_cycles: u64,
    /// The serverless function families driving arrivals.
    pub functions: Vec<FunctionSpec>,
    /// Target *steady-state* concurrent micro-VMs per host (the
    /// experiment's independent variable, "function density"). The
    /// arrival rate is derived: `hosts × density / mean_lifetime_ticks`.
    pub density: f64,
    /// Mean instance lifetime, in ticks (scaled per family).
    pub mean_lifetime_ticks: f64,
    /// Guest pages per micro-VM.
    pub pages_per_vm: usize,
    /// When `true`, hosts scan only user-hinted pages (the ground-truth
    /// mergeable set, as if every function image shipped `madvise`
    /// annotations); when `false`, hosts scan every guest page (KSM's
    /// hint-everything default).
    pub user_hints: bool,
    /// Bounded per-host scan-queue capacity (jobs, not pages); a full
    /// queue rejects the job and the control plane takes a lease.
    pub queue_capacity: usize,
    /// Scan-pipeline throughput: candidate pages a host processes per
    /// tick. The ratio of arrival-driven demand to this budget is what
    /// pushes a host into backpressure.
    pub scan_pages_per_tick: usize,
    /// Base lease duration in ticks; retry `k` waits
    /// `lease_ticks << min(k, max_lease_backoff_shift)`.
    pub lease_ticks: u64,
    /// Exponential-backoff cap for lease retries.
    pub max_lease_backoff_shift: u32,
    /// Run the placement rebalancer every this many ticks.
    pub rebalance_every: u64,
    /// Migrate only while `max − min` resident count exceeds this.
    pub migration_threshold: usize,
    /// Simulated cycles to move one guest page between hosts.
    pub migrate_cycles_per_page: u64,
    /// Enqueue a full rescan job on every host each this many ticks
    /// (churn re-exposes merge candidates between arrivals).
    pub rescan_every: u64,
    /// Apply write churn to resident instances every this many ticks.
    pub churn_every: u64,
    /// Micro-VMs evacuated off a crashed host per tick (live-migration
    /// bandwidth of the recovery path).
    pub evac_vms_per_tick: usize,
    /// Per-host PageForge driver/engine configuration.
    pub pf: PageForgeConfig,
    /// Optional deterministic fault plan, installed on every host's
    /// engine (the same plan; host clocks diverge, so injections do
    /// too — deterministically).
    pub faults: Option<FaultPlan>,
    /// Optional fleet-level chaos plan (host crashes, gray slowdowns,
    /// engine wedges, migration failures). `None` skips every chaos
    /// phase, byte-identically to a build without the subsystem.
    pub fleet_faults: Option<FleetFaultPlan>,
    /// Base seed; every derived stream (arrivals, churn, content) is
    /// labelled off this.
    pub seed: u64,
}

impl FleetConfig {
    /// CI smoke scale: 4 hosts, a few hundred arrivals, a couple of
    /// seconds of wall clock for the whole experiment family.
    pub fn smoke(seed: u64) -> FleetConfig {
        FleetConfig {
            label: "fleet".into(),
            hosts: 4,
            ticks: 160,
            tick_cycles: 100_000,
            functions: FunctionSpec::serverless_suite(),
            density: 2.0,
            mean_lifetime_ticks: 30.0,
            pages_per_vm: 48,
            user_hints: false,
            queue_capacity: 4,
            scan_pages_per_tick: 96,
            lease_ticks: 2,
            max_lease_backoff_shift: 3,
            rebalance_every: 8,
            migration_threshold: 2,
            migrate_cycles_per_page: 2_000,
            rescan_every: 16,
            churn_every: 4,
            evac_vms_per_tick: 4,
            pf: PageForgeConfig::default(),
            faults: None,
            fleet_faults: None,
            seed,
        }
    }

    /// Development scale: 6 hosts, longer horizon.
    pub fn quick(seed: u64) -> FleetConfig {
        FleetConfig {
            label: "fleet".into(),
            hosts: 6,
            ticks: 400,
            mean_lifetime_ticks: 40.0,
            pages_per_vm: 64,
            scan_pages_per_tick: 128,
            ..FleetConfig::smoke(seed)
        }
    }

    /// Full scale (the acceptance-criteria run): 8 hosts, 2000 ticks —
    /// over a thousand micro-VM arrivals at density ≥ 4.
    pub fn full(seed: u64) -> FleetConfig {
        FleetConfig {
            label: "fleet".into(),
            hosts: 8,
            ticks: 2_000,
            density: 4.0,
            mean_lifetime_ticks: 60.0,
            pages_per_vm: 128,
            scan_pages_per_tick: 256,
            ..FleetConfig::smoke(seed)
        }
    }

    /// The derived Poisson arrival rate (instances per tick) that holds
    /// the fleet at `density` concurrent instances per host in steady
    /// state (Little's law: N = λ·L).
    pub fn arrival_rate(&self) -> f64 {
        self.hosts as f64 * self.density / self.mean_lifetime_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_follows_littles_law() {
        let mut cfg = FleetConfig::smoke(1);
        cfg.hosts = 8;
        cfg.density = 4.0;
        cfg.mean_lifetime_ticks = 60.0;
        // λ·L = N ⇒ λ = 8·4/60.
        assert!((cfg.arrival_rate() - 32.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn full_scale_meets_the_arrival_floor() {
        let cfg = FleetConfig::full(1);
        // Expected arrivals = λ·ticks ≥ 1000 (the acceptance criterion).
        assert!(cfg.arrival_rate() * cfg.ticks as f64 >= 1000.0);
    }
}
