//! Ablation (section 4.3): PageForge vs running the software algorithm on a
//! simple in-order core - area and power comparison.

use pageforge_bench::{experiments, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let t = experiments::ablation_inorder_core();
    t.print();
    t.write_json(&args.out_dir, "ablation_inorder_core");
}
