//! Fault-injection integration tests: graceful degradation must change
//! *costs*, never *decisions*. An engine stall mid-run pushes candidates
//! onto the software KSM fallback, and the final merge state must be
//! identical to a fault-free run — at any parallelism level of the bench
//! scheduler.

use pageforge::core::fabric::FlatFabric;
use pageforge::core::{PageForge, PageForgeConfig};
use pageforge::faults::{FaultInjector, FaultPlan, StallWindow};
use pageforge::types::{Cycle, Gfn, PageData, VmId};
use pageforge::vm::HostMemory;
use pageforge_bench::scheduler::{run_units, Unit};

/// A duplicate-rich scenario: `n` pages drawn from a small content pool.
fn world(seed: u64) -> (HostMemory, Vec<(VmId, Gfn)>) {
    let mut mem = HostMemory::new();
    let mut hints = Vec::new();
    for vm in 0..4u32 {
        for gfn in 0..32u64 {
            let class = (vm as u64 * 32 + gfn).wrapping_mul(seed | 1) % 24;
            mem.map_new_page(
                VmId(vm),
                Gfn(gfn),
                PageData::from_fn(|i| {
                    (class.wrapping_mul(0x9E37).wrapping_add(i as u64 * 131) >> 4) as u8
                }),
            );
            hints.push((VmId(vm), Gfn(gfn)));
        }
    }
    (mem, hints)
}

/// Runs the driver over the whole hint list for `passes` full scans under
/// an optional plan; returns final memory, driver, and last cycle.
fn run(
    mem: &HostMemory,
    hints: &[(VmId, Gfn)],
    plan: Option<&FaultPlan>,
    passes: usize,
) -> (HostMemory, PageForge, Cycle) {
    let mut m = mem.clone();
    let mut pf = PageForge::new(PageForgeConfig::default(), hints.to_vec());
    if let Some(p) = plan {
        pf.set_fault_injector(Some(FaultInjector::new(p)));
    }
    let mut fabric = FlatFabric::all_dram(80);
    let mut t = 0;
    for _ in 0..passes {
        let report = pf.scan_batch(&mut m, &mut fabric, t, hints.len());
        t = report.finished_at.max(t) + 10_000;
    }
    (m, pf, t)
}

/// A plan whose only content is one stall window straddling the middle of
/// the run: the engine goes dark mid-batch and recovers later.
fn stall_plan(horizon: Cycle) -> FaultPlan {
    FaultPlan {
        seed: 0,
        events: Vec::new(),
        stalls: vec![StallWindow {
            from: horizon / 4,
            until: horizon / 2,
        }],
    }
}

#[test]
fn stall_mid_batch_preserves_merge_decisions() {
    let (mem, hints) = world(5);
    // Fault-free probe: learns the horizon and the reference merge state.
    let (clean, _, horizon) = run(&mem, &hints, None, 3);

    let plan = stall_plan(horizon);
    let (faulted, pf, _) = run(&mem, &hints, Some(&plan), 3);

    // The stall must actually have engaged the fallback machinery...
    let stats = pf.stats();
    assert!(
        stats.stall_retries > 0 || stats.degraded_candidates > 0,
        "stall window never hit: retries {} degraded {}",
        stats.stall_retries,
        stats.degraded_candidates
    );
    // ...without changing a single merge decision.
    assert_eq!(
        clean.allocated_frames(),
        faulted.allocated_frames(),
        "degraded mode changed the memory savings"
    );
    for (vm, gfn, _) in clean.iter_mappings() {
        assert_eq!(
            clean.guest_read(vm, gfn),
            faulted.guest_read(vm, gfn),
            "guest ({vm}, {gfn}) diverged under the stall"
        );
    }
    clean.check_invariants().unwrap();
    faulted.check_invariants().unwrap();
}

#[test]
fn degraded_candidates_take_the_software_path_entirely() {
    let (mem, hints) = world(11);
    // A stall covering the whole run: every candidate must degrade, and
    // the result must still match the fault-free state.
    let (clean, _, _) = run(&mem, &hints, None, 3);
    let plan = FaultPlan {
        seed: 0,
        events: Vec::new(),
        stalls: vec![StallWindow {
            from: 0,
            until: Cycle::MAX,
        }],
    };
    let (faulted, pf, _) = run(&mem, &hints, Some(&plan), 3);
    assert!(
        pf.stats().degraded_candidates > 0,
        "a run-long stall must degrade candidates"
    );
    assert_eq!(clean.allocated_frames(), faulted.allocated_frames());
    faulted.check_invariants().unwrap();
}

/// The same stall scenario scheduled as bench work units: outputs must be
/// byte-identical at `--jobs 2` and `--jobs 4` (deterministic replay does
/// not depend on worker interleaving).
#[test]
fn stall_scenario_identical_across_scheduler_jobs() {
    let cell = |seed: u64| -> (usize, u64, u64) {
        let (mem, hints) = world(seed);
        let (_, _, horizon) = run(&mem, &hints, None, 2);
        let plan = stall_plan(horizon);
        let (m, pf, _) = run(&mem, &hints, Some(&plan), 2);
        (
            m.allocated_frames(),
            m.stats().merges,
            pf.stats().degraded_candidates + pf.stats().stall_retries,
        )
    };
    let units = |n: usize| -> Vec<Unit<(usize, u64, u64)>> {
        (0..n)
            .map(|i| {
                let seed = 21 + i as u64;
                Unit::new("faults", format!("stall/{seed}"), move || cell(seed))
            })
            .collect()
    };
    let at2: Vec<_> = run_units(2, units(6))
        .expect("jobs=2 runs")
        .into_iter()
        .map(|r| (r.label, r.value))
        .collect();
    let at4: Vec<_> = run_units(4, units(6))
        .expect("jobs=4 runs")
        .into_iter()
        .map(|r| (r.label, r.value))
        .collect();
    assert_eq!(at2, at4, "fault outcomes depend on --jobs level");
    // And the faulted cells really exercised degradation somewhere.
    assert!(
        at2.iter().any(|(_, (_, _, deg))| *deg > 0),
        "no cell ever degraded"
    );
}
