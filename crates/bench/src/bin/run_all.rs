//! Regenerates the complete evaluation: every table, figure, ablation, and
//! extension, in paper order, on the parallel experiment scheduler.
//!
//! * `--jobs N` fans the work units across N threads; results are
//!   byte-identical at any level (each unit is seed-isolated and the merge
//!   is ordered).
//! * `--quick` produces the whole set in about a minute; `--smoke` is the
//!   CI-sized variant; the full-scale run takes tens of minutes.
//! * `--only fig7,latency` restricts the run to named experiments.
//!
//! Timing lands in `<out>/meta/timing.json` (outside `results/*.json`, so
//! result artifacts stay diffable across jobs levels); `make_report`
//! renders it into REPORT.md.

use pageforge_bench::args::print_table2;
use pageforge_bench::{suite, trace_report, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    print_table2();

    let outcome = match suite::run_suite(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    suite::print_and_write(&outcome, &args.out_dir);
    outcome.timing.table().print();
    outcome.timing.write(&args.out_dir);

    if let Some(trace_path) = &args.trace {
        if !pageforge_obs::trace::compiled_in() {
            eprintln!(
                "warning: --trace given but tracing is compiled out; \
                 rebuild with `--features trace` to capture events"
            );
        }
        match trace_report::write_trace_jsonl(trace_path, &outcome.traces) {
            Ok(()) => println!(
                "Trace for {} unit(s) written to {}.",
                outcome.traces.len(),
                trace_path.display()
            ),
            Err(e) => eprintln!("warning: could not write trace: {e}"),
        }
    }

    println!(
        "\nAll experiments complete. JSON copies under {}.",
        args.out_dir.display()
    );
}
