//! Per-query memory access patterns.
//!
//! Each query touches lines within its VM's working set, split into a hot
//! region (frequently re-touched; cache-resident in steady state) and a
//! cold region. The pattern speaks in *guest page indices* — the simulator
//! maps them to host frames through the VM's page table, so merged (CoW)
//! pages are genuinely shared in the cache hierarchy.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pageforge_types::LINES_PER_PAGE;

use crate::apps::AppSpec;

/// One touched line: `(page_index, line_in_page, is_write)` where
/// `page_index` indexes the VM's working-set pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineTouch {
    /// Index into the VM's working-set page list.
    pub page_index: usize,
    /// Line within the page (0..64).
    pub line: usize,
    /// Whether this access writes.
    pub is_write: bool,
}

/// Deterministic access-pattern generator for one query.
#[derive(Debug, Clone)]
pub struct AccessPattern {
    rng: SmallRng,
    working_set: usize,
    hot_pages: usize,
    hot_access_frac: f64,
    write_frac: f64,
}

impl AccessPattern {
    /// Creates the pattern for one query of `spec`, seeded by the query's
    /// `pattern_seed`.
    pub fn new(spec: &AppSpec, seed: u64) -> Self {
        let hot_pages = ((spec.working_set_pages as f64 * spec.hot_frac) as usize).max(1);
        AccessPattern {
            rng: SmallRng::seed_from_u64(seed),
            working_set: spec.working_set_pages.max(1),
            hot_pages,
            hot_access_frac: spec.hot_access_frac,
            write_frac: spec.write_frac,
        }
    }

    /// Draws the next line touch.
    pub fn next_touch(&mut self) -> LineTouch {
        let hot = self.rng.gen::<f64>() < self.hot_access_frac;
        let page_index = if hot {
            self.rng.gen_range(0..self.hot_pages)
        } else {
            self.rng
                .gen_range(self.hot_pages.min(self.working_set - 1)..self.working_set)
        };
        LineTouch {
            page_index,
            line: self.rng.gen_range(0..LINES_PER_PAGE),
            is_write: self.rng.gen::<f64>() < self.write_frac,
        }
    }

    /// Draws `n` touches.
    pub fn touches(&mut self, n: u32) -> Vec<LineTouch> {
        (0..n).map(|_| self.next_touch()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AppSpec {
        AppSpec::by_name("img_dnn").unwrap()
    }

    #[test]
    fn touches_stay_in_working_set() {
        let s = spec();
        let mut p = AccessPattern::new(&s, 1);
        for t in p.touches(10_000) {
            assert!(t.page_index < s.working_set_pages);
            assert!(t.line < LINES_PER_PAGE);
        }
    }

    #[test]
    fn hot_set_dominates() {
        let s = spec();
        let hot_pages = (s.working_set_pages as f64 * s.hot_frac) as usize;
        let mut p = AccessPattern::new(&s, 2);
        let touches = p.touches(20_000);
        let hot = touches.iter().filter(|t| t.page_index < hot_pages).count() as f64;
        let frac = hot / touches.len() as f64;
        assert!(
            (frac - s.hot_access_frac).abs() < 0.05,
            "hot fraction {frac} vs {}",
            s.hot_access_frac
        );
    }

    #[test]
    fn write_fraction_respected() {
        let s = spec();
        let mut p = AccessPattern::new(&s, 3);
        let touches = p.touches(20_000);
        let writes = touches.iter().filter(|t| t.is_write).count() as f64;
        let frac = writes / touches.len() as f64;
        assert!((frac - s.write_frac).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = spec();
        let a = AccessPattern::new(&s, 9).touches(100);
        let b = AccessPattern::new(&s, 9).touches(100);
        assert_eq!(a, b);
        let c = AccessPattern::new(&s, 10).touches(100);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_working_set_is_safe() {
        let mut s = spec();
        s.working_set_pages = 1;
        let mut p = AccessPattern::new(&s, 1);
        for t in p.touches(100) {
            assert_eq!(t.page_index, 0);
        }
    }
}
