//! TailBench-like latency-critical workload models (Table 3 of the paper).
//!
//! The paper drives each of its 10 VMs with one TailBench application and
//! measures the *sojourn latency* of requests (queueing + service) under
//! three configurations (Baseline / KSM / PageForge). We model each
//! application as:
//!
//! * an **open-loop arrival process** at the paper's queries-per-second
//!   rate (Table 3), with exponential interarrivals;
//! * a **service demand distribution** (log-normal) whose mean preserves
//!   the paper's per-app *query granularity* — Sphinx queries are
//!   second-level, Moses/Silo millisecond-level (§6.3 explains how this
//!   granularity determines sensitivity to KSM interference);
//! * a **memory access pattern**: a per-query number of cache-line touches
//!   over the VM's working set, with a hot/cold split.
//!
//! All times are *scaled* by [`TIME_SCALE`] (default 100×) so experiments
//! run in seconds on a laptop; every interval in the system (query lengths,
//! KSM's `sleep_millisecs`, warm-up) scales identically, preserving
//! queueing behaviour. See DESIGN.md ("Time-scaling substitution").
//!
//! | module | paper anchor | contents |
//! |--------|--------------|----------|
//! | [`apps`] | Table 3 | [`AppSpec`]: the eight TailBench applications + QPS |
//! | [`arrival`] | §5.3 | [`ArrivalProcess`]: open-loop query generation |
//! | [`pattern`] | §6.3, Table 4 | [`AccessPattern`]: per-query cache-line touches |
//! | [`serverless`] | PAPERS.md (user-guided serverless dedup) | [`ServerlessWorkload`]: seeded micro-VM churn for the fleet control plane |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod arrival;
pub mod pattern;
pub mod serverless;

pub use apps::{AppSpec, TIME_SCALE};
pub use arrival::{ArrivalProcess, Query};
pub use pattern::{AccessPattern, LineTouch};
pub use serverless::{FunctionSpec, MicroVm, ServerlessWorkload};
