//! Regenerates Figure 8: the outcome of hash-key comparisons under KSM's
//! jhash keys vs PageForge's ECC-based keys.

use pageforge_bench::args::print_table2;
use pageforge_bench::{experiments, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    if args.print_config {
        print_table2();
        return;
    }
    let (t, results) = experiments::figure8(args.seed, args.scale());
    t.print();
    t.write_json(&args.out_dir, "fig8_hash_keys");
    let delta: f64 = results
        .iter()
        .map(|o| o.ecc_match - o.jhash_match)
        .sum::<f64>()
        / results.len() as f64;
    println!(
        "\nECC keys produce {:.1}pp more (false-positive) matches than jhash (paper: 3.7pp).",
        delta * 100.0
    );
    println!("ECC keys read 256B per page vs jhash's 1KB: a 75% reduction (section 6.2).");
}
