//! Cross-crate behavioural tests of the full-system simulator: the
//! interference mechanisms the paper's evaluation hinges on must be
//! *mechanisms in the model*, not assertions.

use pageforge::cache::HitLevel;
use pageforge::mem::{McConfig, MemSource, MemoryController, MemorySystem, MemorySystemConfig};
use pageforge::sim::{DedupMode, SimConfig, SimFabric, System};
use pageforge::types::LineAddr;

use pageforge::cache::{HierarchyConfig, SystemCaches};
use pageforge::core::fabric::MemoryFabric;

/// The PageForge probe path: lines cached by cores are served on-chip and
/// *not* re-fetched from DRAM; uncached lines go to DRAM tagged as
/// PageForge traffic.
#[test]
fn pageforge_traffic_is_tagged_and_cache_aware() {
    let mut caches = SystemCaches::new(HierarchyConfig::micro50(2));
    let mut mem = MemorySystem::new(MemorySystemConfig::micro50());
    caches.access(0, LineAddr(64), false); // core 0 caches line 64
    let mut fabric = SimFabric::new(&mut caches, &mut mem, 0);
    let hit = fabric.read_line(LineAddr(64), 100);
    assert!(hit.on_chip);
    let miss = fabric.read_line(LineAddr(9999), 100);
    assert!(!miss.on_chip);
    assert_eq!(mem.stats().pageforge_lines, 1);
    assert_eq!(mem.stats().demand_lines, 0);
}

/// Coalescing (§3.2.2): a demand read and a PageForge read of the same line
/// merge into one DRAM access when close in time.
#[test]
fn demand_and_pageforge_reads_coalesce() {
    let mut mc = MemoryController::new(McConfig::micro50());
    let g1 = mc.read_line(LineAddr(7), 1000, MemSource::PageForge);
    let g2 = mc.read_line(LineAddr(7), 1010, MemSource::Demand);
    assert!(g2.coalesced);
    assert_eq!(g1.ready_at, g2.ready_at);
    assert_eq!(mc.dram_stats().reads, 1);
}

/// Merging changes the *cache* behaviour, not just the frame count: after
/// merging, two VMs' identical pages are the same lines, so the second
/// VM's accesses hit on-chip.
#[test]
fn merged_pages_share_cache_lines() {
    use pageforge::ksm::{Ksm, KsmConfig};
    use pageforge::types::{Gfn, PageData, VmId};
    use pageforge::vm::HostMemory;

    let mut mem = HostMemory::new();
    let data = PageData::from_fn(|i| (i % 83) as u8);
    mem.map_new_page(VmId(0), Gfn(0), data.clone());
    mem.map_new_page(VmId(1), Gfn(0), data);
    let mut caches = SystemCaches::new(HierarchyConfig::micro50(2));

    // Before merging: distinct frames, distinct lines — core 1 misses.
    let p0 = mem.translate(VmId(0), Gfn(0)).unwrap();
    let p1 = mem.translate(VmId(1), Gfn(0)).unwrap();
    caches.access(0, p0.line_addr(0), false);
    let before = caches.access(1, p1.line_addr(0), false);
    assert_eq!(before.level, HitLevel::Memory);

    // Merge, then: same frame, so core 1 finds core 0's line.
    let mut ksm = Ksm::new(
        KsmConfig::default(),
        vec![(VmId(0), Gfn(0)), (VmId(1), Gfn(0))],
    );
    ksm.run_to_steady_state(&mut mem, 8);
    let shared = mem.translate(VmId(0), Gfn(0)).unwrap();
    assert_eq!(shared, mem.translate(VmId(1), Gfn(0)).unwrap());
    caches.access(0, shared.line_addr(1), false);
    let after = caches.access(1, shared.line_addr(1), false);
    assert_ne!(
        after.level,
        HitLevel::Memory,
        "merged line supplied on-chip"
    );
}

/// The KSM daemon's core theft shows up on exactly the cores it visited.
#[test]
fn ksm_core_theft_is_visible_per_core() {
    let r = System::new(SimConfig::quick(
        "moses",
        DedupMode::Ksm(SimConfig::scaled_ksm()),
        21,
    ))
    .run();
    let d = r.dedup.expect("ksm summary");
    assert!(d.core_cycles_frac_max > d.core_cycles_frac_avg);
    assert!(d.core_cycles_frac_avg > 0.01);
    // Table 4's breakdown categories hold at steady state.
    assert!(d.compare_frac > d.hash_frac, "comparison dominates hashing");
    assert!(d.compare_frac > 0.3 && d.compare_frac < 0.7);
    assert!(d.hash_frac > 0.05 && d.hash_frac < 0.3);
}

/// PageForge achieves the same savings with engine cycles in the Table 5
/// range and near-zero core usage — on every application.
#[test]
fn pageforge_summary_sane_across_apps() {
    for app in ["img_dnn", "silo"] {
        let ksm = System::new(SimConfig::quick(
            app,
            DedupMode::Ksm(SimConfig::scaled_ksm()),
            33,
        ))
        .run();
        let pf = System::new(SimConfig::quick(
            app,
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
            33,
        ))
        .run();
        assert_eq!(
            ksm.mem_stats.allocated_frames, pf.mem_stats.allocated_frames,
            "{app}: savings must be identical"
        );
        let d = pf.dedup.expect("pf summary");
        assert!(d.engine_run_cycles_mean > 100.0, "{app}");
        assert!(d.core_cycles_frac_avg < 0.02, "{app}");
        assert!(d.engine_lines_fetched > 0, "{app}");
    }
}

/// Churn keeps the system dynamic: CoW breaks occur during measurement and
/// the dedup machinery re-merges pages, so merges keep happening after the
/// pre-merge phase.
#[test]
fn churn_drives_continuous_remerging() {
    let r = System::new(SimConfig::quick(
        "masstree",
        DedupMode::Ksm(SimConfig::scaled_ksm()),
        5,
    ))
    .run();
    assert!(r.mem_stats.cow_breaks > 0, "churn must break CoW");
    let d = r.dedup.expect("summary");
    // Total merges exceed what the pre-merge alone produced is hard to
    // observe directly; at minimum the daemon stayed busy.
    assert!(d.merged_total > 0);
}

/// All five applications complete queries under every configuration.
#[test]
fn all_apps_complete_queries_in_all_modes() {
    for app in ["img_dnn", "masstree", "moses", "silo", "sphinx"] {
        for mode in [
            DedupMode::None,
            DedupMode::Ksm(SimConfig::scaled_ksm()),
            DedupMode::PageForge(SimConfig::scaled_pageforge()),
        ] {
            let mut cfg = SimConfig::quick(app, mode, 3);
            if app == "sphinx" {
                cfg.measure_cycles = 60_000_000; // second-level queries
            }
            let label = cfg.dedup.label();
            let r = System::new(cfg).run();
            assert!(
                r.queries_completed > 0,
                "{app}/{label}: no queries completed"
            );
            assert!(r.mean_sojourn() > 0.0, "{app}/{label}");
        }
    }
}
